/**
 * @file
 * Process memory usage probe (Linux /proc based).
 */

#ifndef ARCHVAL_SUPPORT_MEMUSAGE_HH
#define ARCHVAL_SUPPORT_MEMUSAGE_HH

#include <cstddef>

namespace archval
{

/**
 * @return current resident set size in bytes, or 0 when unavailable.
 */
size_t currentRssBytes();

/**
 * @return peak resident set size in bytes, or 0 when unavailable.
 */
size_t peakRssBytes();

} // namespace archval

#endif // ARCHVAL_SUPPORT_MEMUSAGE_HH

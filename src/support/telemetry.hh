/**
 * @file
 * Process-wide observability: a metrics registry and tracing spans.
 *
 * Two independent facilities share this module:
 *
 *  - **Metrics registry.** Named counters, gauges and fixed-bucket
 *    histograms. Registration (`telemetry::counter("replay.hits")`)
 *    walks a lock-sharded name table once and returns a typed handle
 *    whose operations are plain atomics — cheap enough to leave
 *    enabled unconditionally, so every pipeline's counters are live
 *    in every build. `snapshotMetrics()` captures the whole registry
 *    for rendering, the heartbeat, and bench `--json` embedding.
 *
 *  - **Tracing spans.** `ScopedSpan` records an RAII-delimited
 *    interval into a per-thread ring buffer; `writeTrace()` (called
 *    by `shutdownTelemetry()`) exports every buffer as Chrome
 *    trace-event / Perfetto-compatible JSON, with thread-name
 *    metadata and per-span numeric args. Tracing is off by default:
 *    the whole span path is gated behind one relaxed atomic load, so
 *    a disabled span costs a compare-and-branch and touches nothing.
 *
 * Enable tracing either programmatically (`initTelemetry` with a
 * non-empty `tracePath`) or by environment: `ARCHVAL_TRACE=out.json`
 * (read by `initTelemetryFromEnv()`, which benches call on startup).
 * `ARCHVAL_HEARTBEAT=<seconds>` additionally starts the progress
 * heartbeat, a background thread that logs a one-line registry
 * snapshot through the tagged logger at that interval.
 *
 * Metric naming scheme: `<subsystem>.<noun>[_<unit>]`, e.g.
 * `enum.states`, `replay.checkpoint_hits`,
 * `enum.barrier_wait_seconds`. Subsystem prefixes in use: `enum`,
 * `replay`, `player`, `fuzz`, `hunt`.
 */

#ifndef ARCHVAL_SUPPORT_TELEMETRY_HH
#define ARCHVAL_SUPPORT_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace archval::telemetry
{

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

/** Telemetry configuration (see initTelemetry). */
struct TelemetryOptions
{
    /** Trace-JSON output path; empty leaves tracing disabled (spans
     *  become no-ops and shutdown writes no file). */
    std::string tracePath;

    /** Heartbeat interval in seconds; 0 starts no heartbeat. */
    double heartbeatSeconds = 0.0;

    /** Tag the heartbeat logs under, e.g. `[info][telemetry] ...`. */
    std::string heartbeatTag = "telemetry";

    /** Report per-metric rates since the previous beat
     *  (`name=total(+rate/s)`) instead of monotone totals only, so
     *  long sessions show throughput trends. Env:
     *  `ARCHVAL_HEARTBEAT_DELTAS=1`. */
    bool heartbeatDeltas = false;

    /** Per-thread span ring capacity; the oldest spans are dropped
     *  once a thread exceeds it (the drop count is exported). */
    size_t spanRingCapacity = 1 << 16;
};

/**
 * (Re)configure telemetry: arm tracing when `tracePath` is non-empty
 * and start the heartbeat when `heartbeatSeconds > 0`. Any previous
 * configuration is shut down first (flushing its trace); previously
 * recorded spans are cleared so each init starts a fresh trace.
 * Thread-safe and idempotent.
 */
void initTelemetry(const TelemetryOptions &options);

/**
 * Configure from the environment: `ARCHVAL_TRACE` (trace path) and
 * `ARCHVAL_HEARTBEAT` (seconds). Acts only on the first call (so
 * library and bench helpers may both call it) and registers an
 * atexit hook that flushes the trace when the process ends. No-op
 * when neither variable is set.
 */
void initTelemetryFromEnv();

/**
 * Stop the heartbeat, write the trace file (when tracing was armed),
 * and disable tracing. Metrics survive — the registry is
 * process-lifetime. Safe to call concurrently and repeatedly; only
 * one caller writes.
 */
void shutdownTelemetry();

/** @return true when spans are currently recorded (one relaxed
 *  atomic load — the span fast path). */
bool tracingEnabled();

/** Zero every registered metric (handles stay valid). Testing only:
 *  the registry is deliberately monotonic in production. */
void resetMetricsForTesting();

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

/** Monotonic counter. All operations are relaxed atomics. */
class Counter
{
  public:
    void add(uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    friend void resetMetricsForTesting();
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value, with a running maximum. */
class Gauge
{
  public:
    void set(int64_t value)
    {
        value_.store(value, std::memory_order_relaxed);
        int64_t seen = max_.load(std::memory_order_relaxed);
        while (value > seen &&
               !max_.compare_exchange_weak(seen, value,
                                           std::memory_order_relaxed)) {
        }
    }

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    int64_t maxValue() const
    {
        return max_.load(std::memory_order_relaxed);
    }

  private:
    friend void resetMetricsForTesting();
    std::atomic<int64_t> value_{0};
    std::atomic<int64_t> max_{INT64_MIN};
};

/**
 * Fixed-bucket histogram: counts per bucket plus exact running count
 * and sum. Bucket `i` counts samples `<= bounds[i]`; one overflow
 * bucket counts the rest. Bounds are fixed at registration; every
 * record is a handful of relaxed atomics.
 */
class Histogram
{
  public:
    /** @param bounds ascending upper bounds (seconds, cycles, ...). */
    explicit Histogram(std::vector<double> bounds);

    void record(double value);

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Sum of samples. */
    double sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    const std::vector<double> &bounds() const { return bounds_; }

    /** @return the count in bucket @p i (bounds().size() + 1 total). */
    uint64_t bucketCount(size_t i) const;

    /** @return bucket-interpolated quantile @p q in [0, 1]. */
    double quantile(double q) const;

  private:
    friend void resetMetricsForTesting();
    std::vector<double> bounds_;
    std::vector<std::atomic<uint64_t>> buckets_; ///< bounds + overflow
    std::atomic<uint64_t> count_{0};
    std::atomic<double> sum_{0.0}; ///< CAS-loop accumulated
};

/** Default histogram bounds: exponential seconds, 1 µs .. 64 s. */
const std::vector<double> &latencyBoundsSeconds();

/** Default histogram bounds: powers of four, 16 .. 2^24. */
const std::vector<double> &depthBounds();

/**
 * Find-or-create the counter/gauge/histogram named @p name. Handles
 * are stable for the process lifetime; repeated calls with one name
 * return the same object (a histogram keeps its first bounds). Do
 * the lookup once and keep the reference — the handle operations,
 * not these functions, are the hot path.
 */
Counter &counter(std::string_view name);
Gauge &gauge(std::string_view name);
Histogram &histogram(std::string_view name,
                     const std::vector<double> &bounds =
                         latencyBoundsSeconds());

/** Point-in-time copy of one metric, for rendering/serialization. */
struct MetricSample
{
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };
    Kind kind = Kind::Counter;
    std::string name;
    uint64_t count = 0;  ///< counter value / histogram sample count
    int64_t gauge = 0;   ///< gauge current value
    int64_t gaugeMax = 0;
    double sum = 0.0;    ///< histogram sample sum
    double p50 = 0.0;    ///< histogram interpolated median
    double p90 = 0.0;
    std::vector<double> bounds;     ///< histogram bucket upper bounds
    std::vector<uint64_t> buckets;  ///< per-bucket counts
                                    ///< (bounds.size() + 1, overflow last)
};

/** Whole-registry snapshot, sorted by metric name. */
struct RegistrySnapshot
{
    std::vector<MetricSample> samples;

    /** @return multi-line aligned rendering (one metric per line). */
    std::string render() const;

    /** @return a one-line `name=value` digest (heartbeat format);
     *  zero-valued metrics are elided. */
    std::string renderCompact() const;

    /**
     * Like renderCompact(), with per-metric rates since @p prev:
     * counters and histogram sample counts render as
     * `name=total(+rate/s)` over the @p seconds between the two
     * snapshots; gauges stay instantaneous. Metrics zero in both
     * snapshots are elided; a metric absent from @p prev rates from
     * zero. Non-positive @p seconds suppresses the rates.
     */
    std::string renderCompactDelta(const RegistrySnapshot &prev,
                                   double seconds) const;
};

RegistrySnapshot snapshotMetrics();

/**
 * Flatten @p snap as a JSON object: counters as `"name": N`, gauges
 * as `"name": V` (+ `"name.max"`), histograms as `"name.count"`,
 * `"name.sum"`, `"name.p50"`, `"name.p90"`. Used by bench `--json`
 * emissions and the trace file's `otherData`.
 */
std::string metricsJson(const RegistrySnapshot &snap);

/**
 * Render @p snap in the Prometheus text exposition format (0.0.4).
 *
 * Naming rules: every series gets the `archval_` prefix, dots map to
 * underscores, counters gain `_total`, gauges additionally export a
 * `<name>_max` series (the running maximum), histograms export
 * cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
 * A registry name may embed labels with a `{key=value,...}` suffix
 * (e.g. `service.job_run_seconds{verb=replay}`); the suffix becomes
 * proper Prometheus labels and the labelled variants share one
 * HELP/TYPE family header.
 */
std::string renderPrometheus(const RegistrySnapshot &snap);

/** Sample this process's resident-set size via support/memusage into
 *  the max-tracking gauges `process.rss_bytes` and
 *  `process.peak_rss_bytes`. Called on every heartbeat tick; callers
 *  that snapshot the registry out-of-band (stats frames, Prometheus
 *  scrapes) should call it first so memory is never stale. */
void sampleProcessMemory();

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

/** Name the calling thread in the exported trace ("enum.worker.3").
 *  No-op while tracing is disabled. */
void setThreadName(const std::string &name);

/** @return the calling thread's job correlation id (0 = none). */
uint64_t currentJobId();

/**
 * RAII job-correlation scope: while alive, every span the calling
 * thread records carries @p jobId (exported as `args.job` in the
 * trace), letting `trace_summary.py --job` attribute work across
 * worker threads. Engines capture `currentJobId()` before spawning
 * workers and re-install it inside each worker with this scope;
 * nesting restores the previous id on destruction.
 */
class JobScope
{
  public:
    explicit JobScope(uint64_t jobId);
    ~JobScope();

    JobScope(const JobScope &) = delete;
    JobScope &operator=(const JobScope &) = delete;

  private:
    uint64_t prev_;
};

/**
 * A span that crossed a process boundary: same shape as a recorded
 * span but with owned storage, so forked OOC children can ship their
 * spans back over the pipe protocol and the parent can re-record
 * them into the trace.
 */
struct ForeignSpan
{
    std::string name;
    uint64_t startNs = 0;
    uint64_t durNs = 0;
    uint64_t jobId = 0;
};

/**
 * Move the calling thread's recorded spans out of its ring buffer
 * (clearing it) as ForeignSpans. Forked children call this once at
 * startup to discard spans inherited from the parent, then once per
 * batch to ship what the batch recorded.
 */
std::vector<ForeignSpan> drainThreadSpans();

/**
 * Record spans received from another process under a synthetic
 * trace thread named @p threadName (one per distinct name; repeated
 * calls append). Span names are interned into buffer-owned storage.
 * No-op while tracing is disabled.
 */
void recordForeignSpans(const std::string &threadName,
                        const std::vector<ForeignSpan> &spans);

/**
 * RAII tracing span: construction starts the interval, destruction
 * records it into the calling thread's ring buffer. `name` (and arg
 * keys) must be string literals or otherwise outlive the trace —
 * they are captured by pointer on purpose, keeping a disabled span
 * free of any allocation. Up to two numeric args are exported into
 * the span's `args` object.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name) : ScopedSpan(name, 0) {}

    ScopedSpan(const char *name, const char *key1, uint64_t value1)
        : ScopedSpan(name, 1)
    {
        keys_[0] = key1;
        values_[0] = value1;
    }

    ScopedSpan(const char *name, const char *key1, uint64_t value1,
               const char *key2, uint64_t value2)
        : ScopedSpan(name, 2)
    {
        keys_[0] = key1;
        values_[0] = value1;
        keys_[1] = key2;
        values_[1] = value2;
    }

    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    ScopedSpan(const char *name, int num_args);

    const char *name_; ///< nullptr when tracing was off at entry
    uint64_t startNs_ = 0;
    const char *keys_[2] = {nullptr, nullptr};
    uint64_t values_[2] = {0, 0};
    int numArgs_ = 0;
};

/** @return nanoseconds since the process's telemetry epoch (the
 *  clock spans and the heartbeat share). */
uint64_t nowNs();

/**
 * Serialize every recorded span as Chrome trace-event JSON into
 * @p path (shutdownTelemetry's flush; exposed for tests).
 * @return false on I/O failure.
 */
bool writeTrace(const std::string &path);

/** Total spans dropped to ring-buffer overflow (all threads). */
uint64_t droppedSpans();

} // namespace archval::telemetry

#endif // ARCHVAL_SUPPORT_TELEMETRY_HH

/**
 * @file
 * Minimal JSON value, parser and writer.
 *
 * The validation service speaks a JSON job protocol, and a daemon
 * must treat every inbound byte as hostile: the parser is fully
 * validating (RFC 8259 structure), never throws, never recurses
 * past a fixed depth, and reports failures through Result so a
 * malformed request is an error frame, not a dead process.
 *
 * Numbers keep their integer identity when they have one: a token
 * with no fraction/exponent that fits int64 reads back via asInt()
 * bit-exactly, which the protocol relies on for job ids and cycle
 * counts. serialize() emits compact output that this parser (and any
 * other) round-trips.
 */

#ifndef ARCHVAL_SUPPORT_JSON_HH
#define ARCHVAL_SUPPORT_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hh"

namespace archval::json
{

/** One JSON value (tagged union; copies are deep). */
class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,    ///< number with exact int64 representation
        Double, ///< any other number
        String,
        Array,
        Object,
    };

    Value() = default;
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(int64_t i) : kind_(Kind::Int), int_(i) {}
    Value(uint64_t u);
    Value(int i) : Value(static_cast<int64_t>(i)) {}
    Value(double d) : kind_(Kind::Double), double_(d) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Value(const char *s) : Value(std::string(s)) {}

    /** @return an empty array/object value. */
    static Value array();
    static Value object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @name Typed reads with defaults (never throw). @{ */
    bool asBool(bool fallback = false) const;
    int64_t asInt(int64_t fallback = 0) const;
    double asDouble(double fallback = 0.0) const;
    const std::string &asString() const { return string_; }
    /** @} */

    /** @name Array access. @{ */
    std::vector<Value> &items() { return array_; }
    const std::vector<Value> &items() const { return array_; }
    void push(Value v) { array_.push_back(std::move(v)); }
    /** @} */

    /** @name Object access. @{ */
    /** Set @p key (creating it); value must be an object. */
    Value &set(const std::string &key, Value v);
    /** @return the member, or a shared null value when absent (or
     *  when this value is not an object). */
    const Value &get(const std::string &key) const;
    bool has(const std::string &key) const;
    const std::map<std::string, Value> &members() const
    {
        return object_;
    }
    /** @} */

    /** Compact serialization (no whitespace, sorted object keys). */
    std::string serialize() const;

    bool operator==(const Value &other) const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::map<std::string, Value> object_;
};

/**
 * Parse @p text as one JSON document.
 *
 * Fully validating: trailing garbage, bad escapes, unterminated
 * strings, malformed numbers and nesting deeper than @p max_depth
 * all come back as errors. Never throws.
 */
Result<Value> parse(std::string_view text, size_t max_depth = 64);

/** @return @p text as a quoted JSON string literal. */
std::string quote(std::string_view text);

} // namespace archval::json

#endif // ARCHVAL_SUPPORT_JSON_HH

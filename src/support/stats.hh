/**
 * @file
 * Named statistic counters and simple histograms for experiment
 * reporting. Kept deliberately simple: a StatSet is a string-keyed
 * collection that benches print as aligned tables.
 */

#ifndef ARCHVAL_SUPPORT_STATS_HH
#define ARCHVAL_SUPPORT_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace archval
{

/** Running scalar statistic: count, sum, min, max. */
class ScalarStat
{
  public:
    /** Record one sample. */
    void sample(double value);

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / double(count_) : 0.0; }

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** String-keyed collection of scalar stats plus plain counters. */
class StatSet
{
  public:
    /** Add @p delta to the counter named @p name. */
    void add(const std::string &name, uint64_t delta = 1);

    /** Record a sample in the scalar stat named @p name. */
    void sample(const std::string &name, double value);

    /** @return counter value; 0 when absent. */
    uint64_t counter(const std::string &name) const;

    /** @return scalar stat; zero-initialized when absent. */
    ScalarStat scalar(const std::string &name) const;

    /** @return a multi-line aligned rendering of all entries. */
    std::string render() const;

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, ScalarStat> scalars_;
};

} // namespace archval

#endif // ARCHVAL_SUPPORT_STATS_HH

/**
 * @file
 * Wall-clock and CPU timers for experiment statistics.
 */

#ifndef ARCHVAL_SUPPORT_TIMER_HH
#define ARCHVAL_SUPPORT_TIMER_HH

#include <chrono>
#include <ctime>

namespace archval
{

/** Wall-clock stopwatch started at construction. */
class WallTimer
{
  public:
    WallTimer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** @return elapsed seconds since construction or reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Process CPU-time stopwatch started at construction. */
class CpuTimer
{
  public:
    CpuTimer() : start_(now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = now(); }

    /** @return elapsed CPU seconds since construction or reset(). */
    double seconds() const { return now() - start_; }

  private:
    static double
    now()
    {
        timespec ts{};
        clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
        return double(ts.tv_sec) + double(ts.tv_nsec) * 1e-9;
    }

    double start_;
};

} // namespace archval

#endif // ARCHVAL_SUPPORT_TIMER_HH

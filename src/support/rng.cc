#include "rng.hh"

#include "status.hh"

namespace archval
{

namespace
{

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

uint64_t
Rng::below(uint64_t bound)
{
    if (bound == 0)
        panic("Rng::below(0)");
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = (~bound + 1) % bound;
    for (;;) {
        uint64_t draw = next();
        if (draw >= threshold)
            return draw % bound;
    }
}

uint64_t
Rng::range(uint64_t lo, uint64_t hi)
{
    if (lo > hi)
        panic("Rng::range lo > hi");
    return lo + below(hi - lo + 1);
}

bool
Rng::chance(uint64_t numer, uint64_t denom)
{
    if (denom == 0)
        panic("Rng::chance denominator 0");
    return below(denom) < numer;
}

} // namespace archval

#include "memusage.hh"

#include <cstdio>
#include <cstring>

namespace archval
{

namespace
{

size_t
readStatusField(const char *field)
{
    FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;

    size_t kib = 0;
    char line[256];
    size_t field_len = std::strlen(field);
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, field, field_len) == 0) {
            unsigned long long value = 0;
            if (std::sscanf(line + field_len, " %llu", &value) == 1)
                kib = static_cast<size_t>(value);
            break;
        }
    }
    std::fclose(f);
    return kib * 1024;
}

} // namespace

size_t
currentRssBytes()
{
    return readStatusField("VmRSS:");
}

size_t
peakRssBytes()
{
    return readStatusField("VmHWM:");
}

} // namespace archval

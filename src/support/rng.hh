/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * Vector generation uses "biased random" choices for the parts of a
 * test vector that do not affect control (data values, concrete
 * opcodes within a class). All randomness flows through this type so
 * that every experiment is reproducible from a seed.
 */

#ifndef ARCHVAL_SUPPORT_RNG_HH
#define ARCHVAL_SUPPORT_RNG_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace archval
{

/** xoshiro256** generator with convenience draw helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** @return the next raw 64-bit draw. */
    uint64_t next();

    /** @return a uniform integer in [0, bound); bound must be > 0. */
    uint64_t below(uint64_t bound);

    /** @return a uniform integer in [lo, hi] inclusive. */
    uint64_t range(uint64_t lo, uint64_t hi);

    /** @return true with probability @p numer / @p denom. */
    bool chance(uint64_t numer, uint64_t denom);

    /** @return a uniform index into a non-empty container size. */
    size_t index(size_t size) { return static_cast<size_t>(below(size)); }

    /** Fisher-Yates shuffle of @p items in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        for (size_t i = items.size(); i > 1; --i)
            std::swap(items[i - 1], items[this->index(i)]);
    }

  private:
    uint64_t state_[4];
};

} // namespace archval

#endif // ARCHVAL_SUPPORT_RNG_HH

#include "strings.hh"

#include <cstdarg>
#include <cstdio>

namespace archval
{

std::vector<std::string>
splitString(std::string_view text, char sep)
{
    std::vector<std::string> fields;
    size_t start = 0;
    for (size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            fields.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return fields;
}

std::string
trimString(std::string_view text)
{
    size_t begin = 0;
    size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(
                              text[begin])))
        ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(
                              text[end - 1])))
        --end;
    return std::string(text.substr(begin, end - begin));
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
formatString(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);

    std::string out;
    if (needed > 0) {
        out.resize(static_cast<size_t>(needed));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

std::string
withCommas(uint64_t value)
{
    std::string digits = std::to_string(value);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    size_t lead = digits.size() % 3;
    if (lead == 0)
        lead = 3;
    for (size_t i = 0; i < digits.size(); ++i) {
        if (i != 0 && (i - lead) % 3 == 0 && i >= lead)
            out.push_back(',');
        out.push_back(digits[i]);
    }
    return out;
}

std::string
humanBytes(uint64_t bytes)
{
    const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    double value = static_cast<double>(bytes);
    size_t unit = 0;
    while (value >= 1024.0 && unit + 1 < 5) {
        value /= 1024.0;
        ++unit;
    }
    return formatString("%.1f %s", value, units[unit]);
}

std::string
humanSeconds(double seconds)
{
    if (seconds < 120.0)
        return formatString("%.1f secs", seconds);
    if (seconds < 7200.0)
        return formatString("%.1f mins", seconds / 60.0);
    return formatString("%.1f hours", seconds / 3600.0);
}

} // namespace archval

#include "telemetry.hh"

#include <algorithm>
#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "logging.hh"
#include "memusage.hh"
#include "strings.hh"

namespace archval::telemetry
{

namespace
{

/** CAS-loop add for pre-C++20-style portability across libstdc++
 *  versions (and so TSan sees an explicit atomic RMW). */
void
atomicAdd(std::atomic<double> &target, double delta)
{
    double current = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
}

// ---------------------------------------------------------------------
// Metric name tables: lock-sharded so registration from many threads
// never serializes on one mutex. Values are unique_ptrs, so handles
// stay stable for the process lifetime.
// ---------------------------------------------------------------------

constexpr size_t kNameShards = 16;

template <typename T>
struct ShardedRegistry
{
    struct Shard
    {
        std::mutex mutex;
        std::unordered_map<std::string, std::unique_ptr<T>> map;
    };
    std::array<Shard, kNameShards> shards;

    static size_t shardOf(std::string_view name)
    {
        return std::hash<std::string_view>{}(name) % kNameShards;
    }

    template <typename... Args>
    T &findOrCreate(std::string_view name, Args &&...args)
    {
        Shard &shard = shards[shardOf(name)];
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.map.find(std::string(name));
        if (it == shard.map.end()) {
            it = shard.map
                     .emplace(std::string(name),
                              std::make_unique<T>(
                                  std::forward<Args>(args)...))
                     .first;
        }
        return *it->second;
    }

    template <typename Fn>
    void forEach(Fn fn)
    {
        for (Shard &shard : shards) {
            std::lock_guard<std::mutex> lock(shard.mutex);
            for (auto &[name, value] : shard.map)
                fn(name, *value);
        }
    }
};

// ---------------------------------------------------------------------
// Span ring buffers: one per OS thread, registered centrally so the
// exporter can reach them. The owner thread takes the buffer mutex
// for a few instructions per span (uncontended except during a
// flush), which keeps the exporter race-free without fancier
// machinery.
// ---------------------------------------------------------------------

struct SpanEvent
{
    const char *name = nullptr;
    uint64_t startNs = 0;
    uint64_t durNs = 0;
    uint64_t jobId = 0; ///< correlation id (0 = none), see JobScope
    const char *keys[2] = {nullptr, nullptr};
    uint64_t values[2] = {0, 0};
    int numArgs = 0;
};

struct ThreadBuffer
{
    std::mutex mutex;
    uint32_t tid = 0;
    std::string threadName;
    std::vector<SpanEvent> events; ///< ring once size hits capacity
    size_t head = 0;               ///< oldest element when full
    size_t capacity = 0;

    /** Foreign-span name storage: SpanEvent keeps `const char *`
     *  names, so spans received from another process intern their
     *  names here (deque => pointer-stable). */
    std::deque<std::string> namePool;
    std::unordered_map<std::string, const char *> interned;
};

struct Global
{
    std::atomic<bool> tracing{false};
    std::mutex mutex; ///< options + buffer registry
    TelemetryOptions options;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers;
    /** Synthetic buffers for spans shipped across a process
     *  boundary, keyed by trace thread name (also in `buffers`). */
    std::unordered_map<std::string, std::shared_ptr<ThreadBuffer>>
        foreignBuffers;
    std::atomic<uint32_t> nextTid{1};
    std::atomic<uint64_t> dropped{0};

    std::mutex lifecycleMutex; ///< serializes init/shutdown

    std::thread heartbeatThread;
    std::mutex hbMutex;
    std::condition_variable hbCv;
    bool hbStop = false;
    bool hbRunning = false; ///< guarded by lifecycleMutex

    ShardedRegistry<Counter> counters;
    ShardedRegistry<Gauge> gauges;
    ShardedRegistry<Histogram> histograms;
};

/** Leaked on purpose: spans may be recorded during static
 *  destruction of other objects; the registry must outlive them. */
Global &
global()
{
    static Global *g = new Global;
    return *g;
}

ThreadBuffer &
threadBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer = [] {
        auto b = std::make_shared<ThreadBuffer>();
        Global &g = global();
        b->tid = g.nextTid.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(g.mutex);
        b->capacity = g.options.spanRingCapacity
                          ? g.options.spanRingCapacity
                          : TelemetryOptions{}.spanRingCapacity;
        g.buffers.push_back(b);
        return b;
    }();
    return *buffer;
}

void
recordSpan(const SpanEvent &event)
{
    ThreadBuffer &b = threadBuffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    if (b.events.size() < b.capacity) {
        b.events.push_back(event);
    } else if (b.capacity) {
        // Ring full: overwrite the oldest span. Keeping the newest
        // is right for post-mortem traces — the tail explains where
        // the run ended up.
        b.events[b.head] = event;
        b.head = (b.head + 1) % b.capacity;
        global().dropped.fetch_add(1, std::memory_order_relaxed);
    }
}

void
stopHeartbeatLocked(Global &g)
{
    if (!g.hbRunning)
        return;
    {
        std::lock_guard<std::mutex> lock(g.hbMutex);
        g.hbStop = true;
    }
    g.hbCv.notify_all();
    g.heartbeatThread.join();
    g.hbRunning = false;
}

void
startHeartbeatLocked(Global &g, double seconds, std::string tag,
                     bool deltas)
{
    {
        std::lock_guard<std::mutex> lock(g.hbMutex);
        g.hbStop = false;
    }
    g.heartbeatThread = std::thread([seconds, tag = std::move(tag),
                                     deltas] {
        Global &g = global();
        RegistrySnapshot prev;
        uint64_t prev_ns = nowNs();
        if (deltas)
            prev = snapshotMetrics();
        bool beat_fired = false;
        std::unique_lock<std::mutex> lock(g.hbMutex);
        for (;;) {
            g.hbCv.wait_for(
                lock, std::chrono::duration<double>(seconds),
                [&g] { return g.hbStop; });
            const bool stopping = g.hbStop;
            if (stopping && !beat_fired)
                break; // stopped before the first tick: stay silent
            lock.unlock();
            // The tick itself runs with hbMutex released so a beat
            // never delays init/shutdown. The final beat (stopping
            // == true) still happens-before the join in
            // stopHeartbeatLocked, and therefore before the trace
            // export's embedded registry snapshot — shutdown always
            // serializes one last deterministic snapshot instead of
            // racing a half-finished tick.
            sampleProcessMemory();
            RegistrySnapshot snap = snapshotMetrics();
            uint64_t now = nowNs();
            logTagged(LogLevel::Info, tag.c_str(),
                      deltas ? snap.renderCompactDelta(
                                   prev, double(now - prev_ns) / 1e9)
                             : snap.renderCompact());
            if (deltas) {
                prev = std::move(snap);
                prev_ns = now;
            }
            beat_fired = true;
            lock.lock();
            if (stopping || g.hbStop)
                break;
        }
    });
    g.hbRunning = true;
}

/** Shut down under g.lifecycleMutex (held by the caller). */
void
shutdownLocked(Global &g)
{
    stopHeartbeatLocked(g);
    bool was_tracing = g.tracing.exchange(false,
                                          std::memory_order_acq_rel);
    std::string path;
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        path = g.options.tracePath;
    }
    if (was_tracing && !path.empty()) {
        if (!writeTrace(path))
            logWarn("telemetry: failed to write trace to " + path);
    }
}

std::string
jsonQuote(std::string_view text)
{
    std::string out = "\"";
    for (char c : text) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += formatString("\\u%04x", c);
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

} // namespace

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
}

void
Histogram::record(double value)
{
    size_t bucket = std::upper_bound(bounds_.begin(), bounds_.end(),
                                     value) -
                    bounds_.begin();
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, value);
}

uint64_t
Histogram::bucketCount(size_t i) const
{
    return buckets_[i].load(std::memory_order_relaxed);
}

double
Histogram::quantile(double q) const
{
    uint64_t total = count();
    if (total == 0)
        return 0.0;
    uint64_t rank = static_cast<uint64_t>(q * double(total));
    if (rank >= total)
        rank = total - 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets_.size(); ++i) {
        uint64_t in_bucket = bucketCount(i);
        if (seen + in_bucket <= rank) {
            seen += in_bucket;
            continue;
        }
        // Interpolate within the bucket. The overflow bucket has no
        // upper bound: report its lower edge.
        double lo = i == 0 ? 0.0 : bounds_[i - 1];
        if (i == bounds_.size())
            return lo;
        double hi = bounds_[i];
        double frac = in_bucket
                          ? double(rank - seen + 1) / double(in_bucket)
                          : 0.0;
        return lo + (hi - lo) * frac;
    }
    return bounds_.empty() ? 0.0 : bounds_.back();
}

const std::vector<double> &
latencyBoundsSeconds()
{
    static const std::vector<double> bounds = {
        1e-6,   4e-6,   16e-6, 64e-6, 256e-6, 1e-3, 4e-3,
        16e-3,  64e-3,  0.25,  1.0,   4.0,    16.0, 64.0,
    };
    return bounds;
}

const std::vector<double> &
depthBounds()
{
    static const std::vector<double> bounds = {
        16.0,     64.0,     256.0,     1024.0,    4096.0,
        16384.0,  65536.0,  262144.0,  1048576.0, 4194304.0,
        16777216.0,
    };
    return bounds;
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

Counter &
counter(std::string_view name)
{
    return global().counters.findOrCreate(name);
}

Gauge &
gauge(std::string_view name)
{
    return global().gauges.findOrCreate(name);
}

Histogram &
histogram(std::string_view name, const std::vector<double> &bounds)
{
    return global().histograms.findOrCreate(name, bounds);
}

RegistrySnapshot
snapshotMetrics()
{
    Global &g = global();
    RegistrySnapshot snap;
    g.counters.forEach([&](const std::string &name, Counter &c) {
        MetricSample s;
        s.kind = MetricSample::Kind::Counter;
        s.name = name;
        s.count = c.value();
        snap.samples.push_back(std::move(s));
    });
    g.gauges.forEach([&](const std::string &name, Gauge &gg) {
        MetricSample s;
        s.kind = MetricSample::Kind::Gauge;
        s.name = name;
        s.gauge = gg.value();
        int64_t seen_max = gg.maxValue();
        s.gaugeMax = seen_max == INT64_MIN ? s.gauge : seen_max;
        snap.samples.push_back(std::move(s));
    });
    g.histograms.forEach([&](const std::string &name, Histogram &h) {
        MetricSample s;
        s.kind = MetricSample::Kind::Histogram;
        s.name = name;
        s.count = h.count();
        s.sum = h.sum();
        s.p50 = h.quantile(0.50);
        s.p90 = h.quantile(0.90);
        s.bounds = h.bounds();
        s.buckets.resize(s.bounds.size() + 1);
        for (size_t i = 0; i < s.buckets.size(); ++i)
            s.buckets[i] = h.bucketCount(i);
        snap.samples.push_back(std::move(s));
    });
    std::sort(snap.samples.begin(), snap.samples.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return snap;
}

std::string
RegistrySnapshot::render() const
{
    std::string out;
    for (const MetricSample &s : samples) {
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            out += formatString("%-40s %20s\n", s.name.c_str(),
                                withCommas(s.count).c_str());
            break;
          case MetricSample::Kind::Gauge:
            out += formatString("%-40s %20lld (max %lld)\n",
                                s.name.c_str(), (long long)s.gauge,
                                (long long)s.gaugeMax);
            break;
          case MetricSample::Kind::Histogram:
            out += formatString(
                "%-40s %20s  sum %.6g  p50 %.4g  p90 %.4g\n",
                s.name.c_str(), withCommas(s.count).c_str(), s.sum,
                s.p50, s.p90);
            break;
        }
    }
    return out;
}

std::string
RegistrySnapshot::renderCompact() const
{
    std::string out;
    for (const MetricSample &s : samples) {
        bool zero =
            (s.kind == MetricSample::Kind::Counter && s.count == 0) ||
            (s.kind == MetricSample::Kind::Gauge && s.gauge == 0 &&
             s.gaugeMax == 0) ||
            (s.kind == MetricSample::Kind::Histogram && s.count == 0);
        if (zero)
            continue;
        if (!out.empty())
            out += ' ';
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            out += formatString("%s=%llu", s.name.c_str(),
                                (unsigned long long)s.count);
            break;
          case MetricSample::Kind::Gauge:
            out += formatString("%s=%lld", s.name.c_str(),
                                (long long)s.gauge);
            break;
          case MetricSample::Kind::Histogram:
            out += formatString("%s=n%llu/p50=%.3g", s.name.c_str(),
                                (unsigned long long)s.count, s.p50);
            break;
        }
    }
    return out.empty() ? std::string("(no metrics)") : out;
}

std::string
RegistrySnapshot::renderCompactDelta(const RegistrySnapshot &prev,
                                     double seconds) const
{
    // Both sample lists are name-sorted; walk them together.
    std::string out;
    size_t p = 0;
    auto rate_suffix = [&](uint64_t now_count, uint64_t prev_count) {
        if (seconds <= 0.0 || now_count < prev_count)
            return std::string();
        return formatString("(+%.3g/s)",
                            double(now_count - prev_count) / seconds);
    };
    for (const MetricSample &s : samples) {
        while (p < prev.samples.size() && prev.samples[p].name < s.name)
            ++p;
        const MetricSample *before =
            (p < prev.samples.size() && prev.samples[p].name == s.name &&
             prev.samples[p].kind == s.kind)
                ? &prev.samples[p]
                : nullptr;
        bool zero =
            (s.kind == MetricSample::Kind::Counter && s.count == 0) ||
            (s.kind == MetricSample::Kind::Gauge && s.gauge == 0 &&
             s.gaugeMax == 0) ||
            (s.kind == MetricSample::Kind::Histogram && s.count == 0);
        if (zero)
            continue;
        if (!out.empty())
            out += ' ';
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            out += formatString(
                "%s=%llu%s", s.name.c_str(),
                (unsigned long long)s.count,
                rate_suffix(s.count, before ? before->count : 0)
                    .c_str());
            break;
          case MetricSample::Kind::Gauge:
            out += formatString("%s=%lld", s.name.c_str(),
                                (long long)s.gauge);
            break;
          case MetricSample::Kind::Histogram:
            out += formatString(
                "%s=n%llu%s/p50=%.3g", s.name.c_str(),
                (unsigned long long)s.count,
                rate_suffix(s.count, before ? before->count : 0)
                    .c_str(),
                s.p50);
            break;
        }
    }
    return out.empty() ? std::string("(no metrics)") : out;
}

std::string
metricsJson(const RegistrySnapshot &snap)
{
    std::string out = "{";
    bool first = true;
    auto field = [&](const std::string &key, const std::string &val) {
        if (!first)
            out += ", ";
        first = false;
        out += jsonQuote(key) + ": " + val;
    };
    for (const MetricSample &s : snap.samples) {
        switch (s.kind) {
          case MetricSample::Kind::Counter:
            field(s.name, formatString("%llu",
                                       (unsigned long long)s.count));
            break;
          case MetricSample::Kind::Gauge:
            field(s.name, formatString("%lld", (long long)s.gauge));
            field(s.name + ".max",
                  formatString("%lld", (long long)s.gaugeMax));
            break;
          case MetricSample::Kind::Histogram:
            field(s.name + ".count",
                  formatString("%llu", (unsigned long long)s.count));
            field(s.name + ".sum", formatString("%.10g", s.sum));
            field(s.name + ".p50", formatString("%.10g", s.p50));
            field(s.name + ".p90", formatString("%.10g", s.p90));
            break;
        }
    }
    out += "}";
    return out;
}

namespace
{

/** Sanitize one metric-name component into the Prometheus name
 *  charset `[a-zA-Z0-9_:]` (dots become underscores). */
std::string
promSanitize(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

std::string
promEscapeLabelValue(std::string_view text)
{
    std::string out;
    for (char c : text) {
        if (c == '\\' || c == '"') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else {
            out += c;
        }
    }
    return out;
}

/** A registry name split into its exposition family and labels:
 *  `service.job_run_seconds{verb=replay}` becomes family
 *  `archval_service_job_run_seconds` with labels
 *  `verb="replay"`. */
struct PromName
{
    std::string family;
    std::string labels; ///< rendered `k="v",...` without braces
    std::string help;   ///< registry base name, for the HELP line
};

PromName
promName(const std::string &name)
{
    std::string base = name;
    std::string label_part;
    size_t brace = name.find('{');
    if (brace != std::string::npos && name.back() == '}') {
        base = name.substr(0, brace);
        label_part = name.substr(brace + 1, name.size() - brace - 2);
    }
    PromName pn;
    pn.help = base;
    pn.family = "archval_" + promSanitize(base);
    size_t pos = 0;
    while (pos < label_part.size()) {
        size_t comma = label_part.find(',', pos);
        if (comma == std::string::npos)
            comma = label_part.size();
        std::string_view pair =
            std::string_view(label_part).substr(pos, comma - pos);
        size_t eq = pair.find('=');
        if (eq != std::string_view::npos) {
            if (!pn.labels.empty())
                pn.labels += ',';
            pn.labels += promSanitize(pair.substr(0, eq));
            pn.labels += "=\"";
            pn.labels += promEscapeLabelValue(pair.substr(eq + 1));
            pn.labels += '"';
        }
        pos = comma + 1;
    }
    return pn;
}

} // namespace

std::string
renderPrometheus(const RegistrySnapshot &snap)
{
    // Group samples into exposition families so labelled variants of
    // one metric share a single HELP/TYPE header and stay
    // consecutive (the format requires family grouping).
    struct Family
    {
        std::string type;
        std::string help;
        std::vector<std::string> lines;
    };
    std::vector<std::string> order;
    std::unordered_map<std::string, Family> families;
    auto family = [&](const std::string &name, const char *type,
                      const std::string &help) -> Family & {
        auto [it, inserted] = families.try_emplace(name);
        if (inserted) {
            order.push_back(name);
            it->second.type = type;
            it->second.help = help;
        }
        return it->second;
    };
    auto braced = [](const std::string &labels) {
        return labels.empty() ? std::string() : "{" + labels + "}";
    };

    for (const MetricSample &s : snap.samples) {
        PromName pn = promName(s.name);
        switch (s.kind) {
          case MetricSample::Kind::Counter: {
            Family &f = family(pn.family + "_total", "counter",
                               pn.help);
            f.lines.push_back(formatString(
                "%s_total%s %llu", pn.family.c_str(),
                braced(pn.labels).c_str(),
                (unsigned long long)s.count));
            break;
          }
          case MetricSample::Kind::Gauge: {
            Family &f = family(pn.family, "gauge", pn.help);
            f.lines.push_back(formatString(
                "%s%s %lld", pn.family.c_str(),
                braced(pn.labels).c_str(), (long long)s.gauge));
            Family &fm = family(pn.family + "_max", "gauge",
                                pn.help + " (running maximum)");
            fm.lines.push_back(formatString(
                "%s_max%s %lld", pn.family.c_str(),
                braced(pn.labels).c_str(), (long long)s.gaugeMax));
            break;
          }
          case MetricSample::Kind::Histogram: {
            Family &f = family(pn.family, "histogram", pn.help);
            uint64_t cumulative = 0;
            for (size_t i = 0; i < s.bounds.size(); ++i) {
                cumulative += i < s.buckets.size() ? s.buckets[i] : 0;
                std::string labels = pn.labels;
                if (!labels.empty())
                    labels += ',';
                labels += formatString("le=\"%.10g\"", s.bounds[i]);
                f.lines.push_back(formatString(
                    "%s_bucket{%s} %llu", pn.family.c_str(),
                    labels.c_str(), (unsigned long long)cumulative));
            }
            std::string inf_labels = pn.labels;
            if (!inf_labels.empty())
                inf_labels += ',';
            inf_labels += "le=\"+Inf\"";
            f.lines.push_back(formatString(
                "%s_bucket{%s} %llu", pn.family.c_str(),
                inf_labels.c_str(), (unsigned long long)s.count));
            f.lines.push_back(formatString(
                "%s_sum%s %.10g", pn.family.c_str(),
                braced(pn.labels).c_str(), s.sum));
            f.lines.push_back(formatString(
                "%s_count%s %llu", pn.family.c_str(),
                braced(pn.labels).c_str(),
                (unsigned long long)s.count));
            break;
          }
        }
    }

    std::string out;
    for (const std::string &name : order) {
        const Family &f = families[name];
        out += formatString("# HELP %s archval metric %s\n",
                            name.c_str(), f.help.c_str());
        out += formatString("# TYPE %s %s\n", name.c_str(),
                            f.type.c_str());
        for (const std::string &line : f.lines) {
            out += line;
            out += '\n';
        }
    }
    return out;
}

void
sampleProcessMemory()
{
    gauge("process.rss_bytes")
        .set(static_cast<int64_t>(currentRssBytes()));
    gauge("process.peak_rss_bytes")
        .set(static_cast<int64_t>(peakRssBytes()));
}

void
resetMetricsForTesting()
{
    Global &g = global();
    g.counters.forEach([](const std::string &, Counter &c) {
        c.value_.store(0, std::memory_order_relaxed);
    });
    g.gauges.forEach([](const std::string &, Gauge &gg) {
        gg.value_.store(0, std::memory_order_relaxed);
        gg.max_.store(INT64_MIN, std::memory_order_relaxed);
    });
    g.histograms.forEach([](const std::string &, Histogram &h) {
        for (auto &bucket : h.buckets_)
            bucket.store(0, std::memory_order_relaxed);
        h.count_.store(0, std::memory_order_relaxed);
        h.sum_.store(0.0, std::memory_order_relaxed);
    });
}

// ---------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------

uint64_t
nowNs()
{
    static const std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

bool
tracingEnabled()
{
    return global().tracing.load(std::memory_order_relaxed);
}

void
setThreadName(const std::string &name)
{
    if (!tracingEnabled())
        return;
    ThreadBuffer &b = threadBuffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    b.threadName = name;
}

namespace
{
thread_local uint64_t tCurrentJobId = 0;
} // namespace

uint64_t
currentJobId()
{
    return tCurrentJobId;
}

JobScope::JobScope(uint64_t jobId) : prev_(tCurrentJobId)
{
    tCurrentJobId = jobId;
}

JobScope::~JobScope()
{
    tCurrentJobId = prev_;
}

std::vector<ForeignSpan>
drainThreadSpans()
{
    ThreadBuffer &b = threadBuffer();
    std::lock_guard<std::mutex> lock(b.mutex);
    std::vector<ForeignSpan> out;
    out.reserve(b.events.size());
    for (size_t i = 0; i < b.events.size(); ++i) {
        const SpanEvent &e = b.events[(b.head + i) % b.events.size()];
        ForeignSpan f;
        f.name = e.name ? e.name : "";
        f.startNs = e.startNs;
        f.durNs = e.durNs;
        f.jobId = e.jobId;
        out.push_back(std::move(f));
    }
    b.events.clear();
    b.head = 0;
    return out;
}

void
recordForeignSpans(const std::string &threadName,
                   const std::vector<ForeignSpan> &spans)
{
    if (!tracingEnabled() || spans.empty())
        return;
    Global &g = global();
    std::shared_ptr<ThreadBuffer> buffer;
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        auto it = g.foreignBuffers.find(threadName);
        if (it == g.foreignBuffers.end()) {
            auto b = std::make_shared<ThreadBuffer>();
            b->tid = g.nextTid.fetch_add(1, std::memory_order_relaxed);
            b->threadName = threadName;
            b->capacity = g.options.spanRingCapacity
                              ? g.options.spanRingCapacity
                              : TelemetryOptions{}.spanRingCapacity;
            g.buffers.push_back(b);
            it = g.foreignBuffers.emplace(threadName, std::move(b))
                     .first;
        }
        buffer = it->second;
    }
    std::lock_guard<std::mutex> lock(buffer->mutex);
    for (const ForeignSpan &f : spans) {
        auto [it, inserted] = buffer->interned.try_emplace(f.name);
        if (inserted) {
            buffer->namePool.push_back(f.name);
            it->second = buffer->namePool.back().c_str();
        }
        SpanEvent e;
        e.name = it->second;
        e.startNs = f.startNs;
        e.durNs = f.durNs;
        e.jobId = f.jobId;
        if (buffer->events.size() < buffer->capacity) {
            buffer->events.push_back(e);
        } else if (buffer->capacity) {
            buffer->events[buffer->head] = e;
            buffer->head = (buffer->head + 1) % buffer->capacity;
            g.dropped.fetch_add(1, std::memory_order_relaxed);
        }
    }
}

ScopedSpan::ScopedSpan(const char *name, int num_args)
    : name_(nullptr), numArgs_(num_args)
{
    if (!tracingEnabled())
        return;
    name_ = name;
    startNs_ = nowNs();
}

ScopedSpan::~ScopedSpan()
{
    if (!name_)
        return;
    SpanEvent event;
    event.name = name_;
    event.startNs = startNs_;
    event.durNs = nowNs() - startNs_;
    event.jobId = tCurrentJobId;
    event.numArgs = numArgs_;
    for (int i = 0; i < numArgs_; ++i) {
        event.keys[i] = keys_[i];
        event.values[i] = values_[i];
    }
    recordSpan(event);
}

uint64_t
droppedSpans()
{
    return global().dropped.load(std::memory_order_relaxed);
}

bool
writeTrace(const std::string &path)
{
    if (path.empty())
        return true;
    Global &g = global();

    struct ThreadDump
    {
        uint32_t tid;
        std::string name;
        std::vector<SpanEvent> events;
    };
    std::vector<ThreadDump> threads;
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        threads.reserve(g.buffers.size());
        for (const auto &b : g.buffers) {
            std::lock_guard<std::mutex> buffer_lock(b->mutex);
            ThreadDump dump;
            dump.tid = b->tid;
            dump.name = b->threadName;
            dump.events.reserve(b->events.size());
            for (size_t i = 0; i < b->events.size(); ++i) {
                dump.events.push_back(
                    b->events[(b->head + i) % b->events.size()]);
            }
            threads.push_back(std::move(dump));
        }
    }

    // Flatten and sort by start time for a deterministic, viewer-
    // friendly file.
    struct Flat
    {
        uint32_t tid;
        SpanEvent event;
    };
    std::vector<Flat> flat;
    for (const ThreadDump &t : threads) {
        for (const SpanEvent &e : t.events)
            flat.push_back({t.tid, e});
    }
    std::sort(flat.begin(), flat.end(),
              [](const Flat &a, const Flat &b) {
                  if (a.event.startNs != b.event.startNs)
                      return a.event.startNs < b.event.startNs;
                  return a.tid < b.tid;
              });

    std::FILE *file = std::fopen(path.c_str(), "w");
    if (!file)
        return false;
    std::fprintf(file, "{\n\"traceEvents\": [\n");
    std::fprintf(file,
                 "{\"ph\": \"M\", \"name\": \"process_name\", "
                 "\"pid\": 1, \"tid\": 0, "
                 "\"args\": {\"name\": \"archval\"}}");
    for (const ThreadDump &t : threads) {
        std::string name = t.name.empty()
                               ? formatString("thread-%u", t.tid)
                               : t.name;
        std::fprintf(file,
                     ",\n{\"ph\": \"M\", \"name\": \"thread_name\", "
                     "\"pid\": 1, \"tid\": %u, "
                     "\"args\": {\"name\": %s}}",
                     t.tid, jsonQuote(name).c_str());
    }
    for (const Flat &f : flat) {
        const SpanEvent &e = f.event;
        std::fprintf(file,
                     ",\n{\"ph\": \"X\", \"name\": %s, "
                     "\"cat\": \"archval\", \"pid\": 1, "
                     "\"tid\": %u, \"ts\": %.3f, \"dur\": %.3f",
                     jsonQuote(e.name).c_str(), f.tid,
                     double(e.startNs) / 1e3, double(e.durNs) / 1e3);
        if (e.numArgs || e.jobId) {
            std::fprintf(file, ", \"args\": {");
            bool first = true;
            if (e.jobId) {
                std::fprintf(file, "\"job\": %llu",
                             (unsigned long long)e.jobId);
                first = false;
            }
            for (int i = 0; i < e.numArgs; ++i) {
                std::fprintf(file, "%s%s: %llu", first ? "" : ", ",
                             jsonQuote(e.keys[i]).c_str(),
                             (unsigned long long)e.values[i]);
                first = false;
            }
            std::fprintf(file, "}");
        }
        std::fprintf(file, "}");
    }
    std::fprintf(file, "\n],\n\"displayTimeUnit\": \"ms\",\n");
    std::fprintf(file,
                 "\"otherData\": {\"droppedSpans\": %llu, "
                 "\"metrics\": %s}\n}\n",
                 (unsigned long long)droppedSpans(),
                 metricsJson(snapshotMetrics()).c_str());
    return std::fclose(file) == 0;
}

// ---------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------

void
initTelemetry(const TelemetryOptions &options)
{
    Global &g = global();
    std::lock_guard<std::mutex> lifecycle(g.lifecycleMutex);
    shutdownLocked(g);
    {
        std::lock_guard<std::mutex> lock(g.mutex);
        g.options = options;
        // Fresh trace: clear anything recorded under the previous
        // configuration and re-apply the ring capacity.
        for (const auto &b : g.buffers) {
            std::lock_guard<std::mutex> buffer_lock(b->mutex);
            b->events.clear();
            b->head = 0;
            b->capacity = options.spanRingCapacity;
        }
        g.dropped.store(0, std::memory_order_relaxed);
    }
    if (options.heartbeatSeconds > 0)
        startHeartbeatLocked(g, options.heartbeatSeconds,
                             options.heartbeatTag,
                             options.heartbeatDeltas);
    if (!options.tracePath.empty())
        g.tracing.store(true, std::memory_order_release);
}

void
initTelemetryFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        const char *trace = std::getenv("ARCHVAL_TRACE");
        const char *heartbeat = std::getenv("ARCHVAL_HEARTBEAT");
        if (!trace && !heartbeat)
            return;
        TelemetryOptions options;
        if (trace)
            options.tracePath = trace;
        if (heartbeat)
            options.heartbeatSeconds = std::atof(heartbeat);
        const char *deltas = std::getenv("ARCHVAL_HEARTBEAT_DELTAS");
        options.heartbeatDeltas =
            deltas && *deltas && std::string_view(deltas) != "0";
        // The heartbeat was asked for explicitly; make sure its Info
        // lines are admitted.
        if (options.heartbeatSeconds > 0 &&
            static_cast<int>(logLevel()) <
                static_cast<int>(LogLevel::Info))
            setLogLevel(LogLevel::Info);
        initTelemetry(options);
        std::atexit([] { shutdownTelemetry(); });
    });
}

void
shutdownTelemetry()
{
    Global &g = global();
    std::lock_guard<std::mutex> lifecycle(g.lifecycleMutex);
    shutdownLocked(g);
}

} // namespace archval::telemetry

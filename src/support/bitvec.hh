/**
 * @file
 * Packed dynamic bit vector used for encoded model-checker states.
 *
 * A BitVec is a fixed-width (set at construction) sequence of bits
 * with field accessors for multi-bit slices. It is the unit stored in
 * the enumerator's hash table, so it is compact (one heap word vector)
 * and hashable.
 */

#ifndef ARCHVAL_SUPPORT_BITVEC_HH
#define ARCHVAL_SUPPORT_BITVEC_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace archval
{

/** Fixed-width packed bit vector with multi-bit field access. */
class BitVec
{
  public:
    /** Construct an all-zero vector of @p num_bits bits. */
    explicit BitVec(size_t num_bits = 0);

    /** @return the width in bits. */
    size_t numBits() const { return numBits_; }

    /** @return bit @p index (0 = LSB of word 0). */
    bool get(size_t index) const;

    /** Set bit @p index to @p value. */
    void set(size_t index, bool value);

    /**
     * Read an unsigned field of @p width bits starting at bit @p lsb.
     * @p width must be <= 64.
     */
    uint64_t getField(size_t lsb, size_t width) const;

    /**
     * Write the low @p width bits of @p value at bit @p lsb.
     * @p width must be <= 64.
     */
    void setField(size_t lsb, size_t width, uint64_t value);

    /** Reset every bit to zero without changing the width. */
    void clear();

    /** @return a string of '0'/'1', MSB first, for debugging. */
    std::string toString() const;

    /** @return a stable hash of the contents. */
    size_t hash() const;

    bool operator==(const BitVec &other) const;
    bool operator!=(const BitVec &other) const { return !(*this == other); }

    /** Lexicographic comparison, for ordered containers. */
    bool operator<(const BitVec &other) const;

    /** @return approximate heap bytes used by this vector. */
    size_t memoryBytes() const { return words_.size() * sizeof(uint64_t); }

  private:
    size_t numBits_;
    std::vector<uint64_t> words_;
};

/** std::hash adaptor for BitVec. */
struct BitVecHash
{
    size_t operator()(const BitVec &v) const { return v.hash(); }
};

} // namespace archval

#endif // ARCHVAL_SUPPORT_BITVEC_HH

/**
 * @file
 * Minimal leveled logger used across the library.
 *
 * Output goes to stderr. The level is a process-global setting so that
 * examples and benches can silence module chatter with one call.
 */

#ifndef ARCHVAL_SUPPORT_LOGGING_HH
#define ARCHVAL_SUPPORT_LOGGING_HH

#include <sstream>
#include <string>

namespace archval
{

/** Severity levels, in increasing verbosity order. */
enum class LogLevel
{
    Quiet = 0, ///< nothing at all
    Warn = 1,  ///< possible misconfiguration, continuing
    Info = 2,  ///< high-level progress messages
    Debug = 3, ///< per-step detail, for debugging the library itself
};

/** Set the process-global log level. */
void setLogLevel(LogLevel level);

/** @return the process-global log level. */
LogLevel logLevel();

/** Emit @p msg at @p level if the global level admits it. The line
 *  is assembled in one buffer and written with a single locked write,
 *  so concurrent workers never interleave mid-line. */
void logMessage(LogLevel level, const std::string &msg);

/** Like logMessage, with a subsystem tag prefix:
 *  `[info][telemetry] ...`. Used by the telemetry heartbeat; @p tag
 *  must be non-null. */
void logTagged(LogLevel level, const char *tag, const std::string &msg);

/** Emit a warning message. */
inline void logWarn(const std::string &msg) { logMessage(LogLevel::Warn, msg); }

/** Emit an informational message. */
inline void logInfo(const std::string &msg) { logMessage(LogLevel::Info, msg); }

/** Emit a debug message. */
inline void
logDebug(const std::string &msg)
{
    logMessage(LogLevel::Debug, msg);
}

} // namespace archval

#endif // ARCHVAL_SUPPORT_LOGGING_HH

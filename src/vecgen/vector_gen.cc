#include "vector_gen.hh"

#include "pp/isa.hh"
#include "support/status.hh"
#include "support/strings.hh"

namespace archval::vecgen
{

namespace
{

using pp::InstrClass;
using rtl::DRefill;
using rtl::PpChoiceVar;

/** Per-packet skeleton recorded during the tour walk. */
struct Skeleton
{
    InstrClass cls = InstrClass::Alu;
    unsigned count = 1;
    bool squashed = false;
    bool branchTaken = false;
    // Address constraint for loads (last one wins; see header).
    bool hasConstraint = false;
    bool sameLine = false;
    int storeRef = -1;
    // Materialized address for memory ops.
    uint32_t memAddr = 0;
    // Seed for this packet's operand draws: a hash of (generator
    // seed, tour-edge prefix up to the fetch cycle). See prefixMix.
    uint64_t seedHash = 0;
};

/** FNV-1a step folding @p value into the running prefix hash. */
uint64_t
prefixMix(uint64_t hash, uint64_t value)
{
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (8 * i)) & 0xff;
        hash *= 0x100000001b3ull;
    }
    return hash;
}

size_t
varIndex(PpChoiceVar var)
{
    return static_cast<size_t>(var);
}

} // namespace

VectorGenerator::VectorGenerator(const rtl::PpFsmModel &model,
                                 uint64_t seed)
    : model_(model), codec_(model.makeChoiceCodec()), seed_(seed)
{
}

TestTrace
VectorGenerator::generate(const graph::StateGraph &graph,
                          const graph::Trace &trace, size_t trace_index)
{
    if (!graph.statesRetained())
        fatal("vector generation needs retained states "
              "(EnumOptions::retainStates)");

    TestTrace out;
    out.traceIndex = trace_index;
    out.cycles.reserve(trace.edges.size());

    // ------------------------------------------------------------------
    // Pass 1: walk the tour, record forced signals, track pipeline
    // occupancy for squash filtering and conflict constraints.
    // ------------------------------------------------------------------
    std::vector<Skeleton> skeletons;
    int rd_hold = -1, ex_hold = -1, mem_hold = -1;
    int pending_store = -1;

    // Running hash of the tour-edge prefix. Each packet's operand
    // draws are seeded from the hash at its fetch cycle, so traces
    // sharing a reset-rooted edge prefix materialize byte-identical
    // stimulus for that prefix (what ReplayEngine checkpoint sharing
    // keys on) while decorrelating right after the walks diverge.
    uint64_t prefix_hash = prefixMix(0xcbf29ce484222325ull, seed_);

    for (graph::EdgeId e : trace.edges) {
        prefix_hash = prefixMix(prefix_hash, e);
        const graph::Edge &edge = graph.edge(e);
        const BitVec &src = graph.packedState(edge.src);
        rtl::PpControlState st = model_.unpack(src);
        fsm::Choice choice = codec_.decode(edge.choiceCode);
        rtl::PpOutputs cycle_out = model_.outputsFor(src, choice);

        // Record the forced-signal vector for this cycle verbatim.
        rtl::ForcedSignals forced{};
        for (size_t i = 0; i < rtl::numPpChoiceVars && i < choice.size();
             ++i)
            forced[i] = choice[i];
        out.cycles.push_back(forced);
        out.instructions += cycle_out.fetchCount;

        // Conflict-check constraint: the control examined SameLine
        // this cycle for the load in MEM against the pending store.
        // (A control mutated to skip the check never examines it, so
        // no constraint is recorded and the load's address falls
        // back to biased-random — which is how such a bug gets the
        // chance to collide and manifest.)
        if (st.memClass == InstrClass::Load && !st.memDone &&
            st.drefill == DRefill::Idle && st.storePending &&
            !model_.config().mutations.test(static_cast<size_t>(
                rtl::MutationId::ConflictDropsLoadCheck))) {
            if (mem_hold >= 0 && pending_store >= 0) {
                Skeleton &load = skeletons[mem_hold];
                if (!load.hasConstraint)
                    ++stats_.constrainedLoads;
                load.hasConstraint = true;
                load.sameLine =
                    choice[varIndex(PpChoiceVar::SameLine)] != 0;
                load.storeRef = pending_store;
            }
        }

        // Pending-store tracking (before the commit clears it).
        if (cycle_out.storeProbe ||
            (cycle_out.critWord && st.memClass == InstrClass::Store)) {
            pending_store = mem_hold;
        }
        if (cycle_out.storeCommit)
            pending_store = -1;

        // Branch resolution bookkeeping (the branch sits in EX).
        if (st.exClass == InstrClass::Branch && cycle_out.advance &&
            ex_hold >= 0) {
            skeletons[ex_hold].branchTaken = cycle_out.branchTaken;
        }

        // Pipeline occupancy.
        if (cycle_out.advance) {
            mem_hold = ex_hold;
            if (cycle_out.branchTaken) {
                if (rd_hold >= 0) {
                    skeletons[rd_hold].squashed = true;
                    ++stats_.squashedPackets;
                }
                ex_hold = -1;
                rd_hold = -1;
            } else {
                ex_hold = rd_hold;
                if (cycle_out.fetch) {
                    Skeleton skel;
                    skel.cls = cycle_out.fetchClass;
                    skel.count = cycle_out.fetchCount;
                    skel.seedHash = prefix_hash;
                    skeletons.push_back(skel);
                    rd_hold = static_cast<int>(skeletons.size()) - 1;
                } else {
                    rd_hold = -1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Pass 2: materialize concrete instructions. Everything the
    // control does not see is biased-random; load addresses honour
    // the recorded conflict constraints.
    // ------------------------------------------------------------------
    const uint32_t dmem_words = model_.config().machine.dmemWords;
    const uint32_t line_bytes = model_.config().lineWords * 4;

    auto random_addr = [&](Rng &r) -> uint32_t {
        return static_cast<uint32_t>(r.index(dmem_words)) * 4;
    };

    auto random_alu = [&](Rng &r) -> uint32_t {
        unsigned rd = 1 + static_cast<unsigned>(r.index(31));
        unsigned rs = static_cast<unsigned>(r.index(32));
        unsigned rt = static_cast<unsigned>(r.index(32));
        switch (r.index(8)) {
          case 0:
            return pp::encodeRType(pp::Funct::Add, rd, rs, rt);
          case 1:
            return pp::encodeRType(pp::Funct::Sub, rd, rs, rt);
          case 2:
            return pp::encodeRType(pp::Funct::Xor, rd, rs, rt);
          case 3:
            return pp::encodeRType(pp::Funct::Or, rd, rs, rt);
          case 4:
            return pp::encodeRType(pp::Funct::Slt, rd, rs, rt);
          case 5:
            return pp::encodeIType(
                pp::Opcode::Addi, rd, rs,
                static_cast<int16_t>(r.next() & 0xffff));
          case 6:
            return pp::encodeIType(
                pp::Opcode::Xori, rd, rs,
                static_cast<int16_t>(r.next() & 0x7fff));
          default:
            return pp::encodeRType(pp::Funct::Sll, rd, 0, rt,
                                   static_cast<unsigned>(
                                       r.index(32)));
        }
    };

    // Biased-random addressing: unconstrained loads occasionally
    // reuse the most recent store's address, so ordering bugs that
    // need an exact collision still get exercised.
    bool have_store_addr = false;
    uint32_t last_store_addr = 0;

    for (Skeleton &skel : skeletons) {
        Rng r(skel.seedHash);
        uint32_t slot0 = 0;
        switch (skel.cls) {
          case InstrClass::Alu:
            slot0 = random_alu(r);
            break;
          case InstrClass::Load: {
            uint32_t addr;
            if (!skel.hasConstraint && have_store_addr &&
                r.chance(1, 8)) {
                addr = last_store_addr;
                skel.memAddr = addr;
                slot0 = pp::encodeLw(
                    1 + static_cast<unsigned>(r.index(31)), 0,
                    static_cast<int16_t>(addr));
                break;
            }
            if (skel.hasConstraint && skel.storeRef >= 0) {
                uint32_t store_addr =
                    skeletons[skel.storeRef].memAddr;
                if (skel.sameLine) {
                    // Mostly the exact word (makes stale-data bugs
                    // visible), sometimes elsewhere in the line.
                    if (r.chance(3, 4)) {
                        addr = store_addr;
                    } else {
                        addr = (store_addr & ~(line_bytes - 1)) +
                               static_cast<uint32_t>(r.index(
                                   model_.config().lineWords)) * 4;
                    }
                } else {
                    do {
                        addr = random_addr(r);
                    } while (addr / line_bytes ==
                             store_addr / line_bytes);
                }
            } else {
                addr = random_addr(r);
            }
            skel.memAddr = addr;
            slot0 = pp::encodeLw(
                1 + static_cast<unsigned>(r.index(31)), 0,
                static_cast<int16_t>(addr));
            break;
          }
          case InstrClass::Store: {
            uint32_t addr = random_addr(r);
            skel.memAddr = addr;
            have_store_addr = true;
            last_store_addr = addr;
            slot0 = pp::encodeSw(static_cast<unsigned>(r.index(32)),
                                 0, static_cast<int16_t>(addr));
            break;
          }
          case InstrClass::Switch:
            slot0 = pp::encodeSwitch(
                1 + static_cast<unsigned>(r.index(31)));
            break;
          case InstrClass::Send:
            slot0 = pp::encodeSend(
                static_cast<unsigned>(r.index(32)));
            break;
          case InstrClass::Branch:
            // The outcome is dictated by the tour: encode a branch
            // that always resolves the chosen way.
            slot0 = skel.branchTaken
                        ? pp::encodeBranch(pp::Opcode::Beq, 0, 0, 0)
                        : pp::encodeBranch(pp::Opcode::Bne, 0, 0, 0);
            break;
          default:
            panic("unexpected instruction class in skeleton");
        }

        out.fetchStream.push_back(slot0);
        uint32_t slot1 = 0;
        if (skel.count == 2) {
            slot1 = random_alu(r);
            out.fetchStream.push_back(slot1);
        }

        if (!skel.squashed) {
            out.retiredStream.push_back(slot0);
            if (skel.count == 2)
                out.retiredStream.push_back(slot1);
            if (skel.cls == InstrClass::Switch) {
                out.inbox.push_back(
                    static_cast<uint32_t>(r.next()));
            }
        }
    }

    if (out.instructions != trace.instructions) {
        panic(formatString(
            "vector generator instruction accounting mismatch: "
            "%llu generated vs %llu in the tour",
            static_cast<unsigned long long>(out.instructions),
            static_cast<unsigned long long>(trace.instructions)));
    }

    ++stats_.traces;
    stats_.cycles += out.cycles.size();
    stats_.instructions += out.instructions;
    return out;
}

std::vector<TestTrace>
VectorGenerator::generateAll(const graph::StateGraph &graph,
                             const std::vector<graph::Trace> &traces)
{
    std::vector<TestTrace> out;
    out.reserve(traces.size());
    for (size_t i = 0; i < traces.size(); ++i)
        out.push_back(generate(graph, traces[i], i));
    return out;
}

std::string
VectorGenerator::renderForceScript(const TestTrace &trace) const
{
    const auto &vars = codec_.vars();
    std::string script;
    script += formatString(
        "// trace %zu: %zu cycles, %llu instructions, %zu fetch "
        "words\n",
        trace.traceIndex, trace.cycles.size(),
        static_cast<unsigned long long>(trace.instructions),
        trace.fetchStream.size());
    script += "initial begin\n";
    size_t fetch_pos = 0;
    for (size_t cycle = 0; cycle < trace.cycles.size(); ++cycle) {
        const auto &signals = trace.cycles[cycle];
        script += formatString("  @cycle_%zu;", cycle);
        for (size_t v = 0; v < vars.size(); ++v) {
            if (vars[v].cardinality > 1) {
                script += formatString(" force %s = %u;",
                                       vars[v].name.c_str(),
                                       signals[v]);
            }
        }
        // Annotate the instruction entering on a fetch cycle.
        // ihit is canonical: non-zero only on cycles where the
        // control fetched, so it marks instruction consumption.
        uint32_t ihit = signals[varIndex(PpChoiceVar::IHit)];
        if (ihit && fetch_pos < trace.fetchStream.size()) {
            script += formatString(
                " // fetch %s",
                pp::decode(trace.fetchStream[fetch_pos])
                    .toString()
                    .c_str());
            fetch_pos += 1 + signals[varIndex(PpChoiceVar::Dual)];
        }
        script += "\n";
    }
    script += "  release_all;\nend\n";
    return script;
}

} // namespace archval::vecgen

#include "trace_io.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/strings.hh"

namespace archval::vecgen
{

namespace
{

constexpr const char *magic = "archval-trace 1";

} // namespace

std::string
serializeTrace(const TestTrace &trace)
{
    std::string out;
    out += magic;
    out += formatString("\ntrace %zu\ninstructions %llu\n",
                        trace.traceIndex,
                        static_cast<unsigned long long>(
                            trace.instructions));

    out += formatString("cycles %zu %zu\n", trace.cycles.size(),
                        rtl::numPpChoiceVars);
    for (const auto &signals : trace.cycles) {
        out += "C";
        for (uint32_t value : signals)
            out += formatString(" %u", value);
        out += "\n";
    }

    auto word_section = [&out](const char *name,
                               const auto &words) {
        out += formatString("%s %zu\n", name, words.size());
        size_t column = 0;
        for (uint32_t word : words) {
            out += column == 0 ? "W" : "";
            out += formatString(" %08x", word);
            if (++column == 8) {
                out += "\n";
                column = 0;
            }
        }
        if (column != 0)
            out += "\n";
    };
    word_section("fetch", trace.fetchStream);
    word_section("retired", trace.retiredStream);
    word_section("inbox", trace.inbox);

    out += "end\n";
    return out;
}

Result<TestTrace>
deserializeTrace(const std::string &text)
{
    using Out = TestTrace;
    std::istringstream in(text);
    std::string line;

    auto err = [](const std::string &msg) {
        return Result<Out>::error("trace parse: " + msg);
    };

    if (!std::getline(in, line) || trimString(line) != magic)
        return err("bad magic");

    TestTrace trace;
    size_t num_cycles = 0, num_vars = 0;
    enum class Section
    {
        Header,
        Cycles,
        Words,
    };

    if (!std::getline(in, line) ||
        std::sscanf(line.c_str(), "trace %zu", &trace.traceIndex) != 1)
        return err("missing trace index");
    unsigned long long instrs = 0;
    if (!std::getline(in, line) ||
        std::sscanf(line.c_str(), "instructions %llu", &instrs) != 1)
        return err("missing instruction count");
    trace.instructions = instrs;

    if (!std::getline(in, line) ||
        std::sscanf(line.c_str(), "cycles %zu %zu", &num_cycles,
                    &num_vars) != 2)
        return err("missing cycle header");
    if (num_vars != rtl::numPpChoiceVars)
        return err("signal arity mismatch (different model "
                   "version?)");

    trace.cycles.reserve(num_cycles);
    for (size_t i = 0; i < num_cycles; ++i) {
        if (!std::getline(in, line) || line.empty() || line[0] != 'C')
            return err(formatString("bad cycle line %zu", i));
        std::istringstream cycle_line(line.substr(1));
        rtl::ForcedSignals signals{};
        for (size_t v = 0; v < num_vars; ++v) {
            if (!(cycle_line >> signals[v]))
                return err(formatString("short cycle line %zu", i));
        }
        trace.cycles.push_back(signals);
    }

    auto read_words = [&](const char *name,
                          auto &words) -> Result<bool> {
        size_t count = 0;
        std::string header;
        if (!std::getline(in, header))
            return Result<bool>::error("trace parse: missing " +
                                       std::string(name));
        std::string expect = std::string(name) + " %zu";
        if (std::sscanf(header.c_str(), expect.c_str(), &count) != 1)
            return Result<bool>::error("trace parse: bad " +
                                       std::string(name) + " header");
        size_t got = 0;
        while (got < count) {
            if (!std::getline(in, line) || line.empty() ||
                line[0] != 'W')
                return Result<bool>::error(
                    "trace parse: short " + std::string(name));
            std::istringstream word_line(line.substr(1));
            std::string token;
            while (got < count && word_line >> token) {
                words.push_back(static_cast<uint32_t>(
                    std::strtoul(token.c_str(), nullptr, 16)));
                ++got;
            }
        }
        return true;
    };

    if (auto r = read_words("fetch", trace.fetchStream); !r.ok())
        return err(r.errorMessage());
    if (auto r = read_words("retired", trace.retiredStream); !r.ok())
        return err(r.errorMessage());
    if (auto r = read_words("inbox", trace.inbox); !r.ok())
        return err(r.errorMessage());

    if (!std::getline(in, line) || trimString(line) != "end")
        return err("missing end marker");
    return trace;
}

Result<bool>
writeTraceFile(const TestTrace &trace, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return Result<bool>::error("cannot open " + path);
    out << serializeTrace(trace);
    out.close();
    if (!out)
        return Result<bool>::error("write failed for " + path);
    return true;
}

Result<TestTrace>
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Result<TestTrace>::error("cannot open " + path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return deserializeTrace(buffer.str());
}

std::string
traceFileName(size_t index)
{
    return formatString("trace_%06zu.avt", index);
}

Result<size_t>
writeTraceSet(const std::vector<TestTrace> &traces,
              const std::string &directory)
{
    std::error_code ec;
    std::filesystem::create_directories(directory, ec);
    if (ec)
        return Result<size_t>::error("cannot create " + directory +
                                     ": " + ec.message());
    for (const TestTrace &trace : traces) {
        auto r = writeTraceFile(
            trace, directory + "/" + traceFileName(trace.traceIndex));
        if (!r.ok())
            return Result<size_t>::error(r.errorMessage());
    }
    return traces.size();
}

Result<std::vector<TestTrace>>
readTraceSet(const std::string &directory)
{
    using Out = std::vector<TestTrace>;
    std::error_code ec;
    std::vector<std::string> paths;
    for (const auto &entry :
         std::filesystem::directory_iterator(directory, ec)) {
        if (entry.path().extension() == ".avt")
            paths.push_back(entry.path().string());
    }
    if (ec)
        return Result<Out>::error("cannot read " + directory + ": " +
                                  ec.message());
    std::sort(paths.begin(), paths.end());

    std::vector<TestTrace> traces;
    for (const std::string &path : paths) {
        auto trace = readTraceFile(path);
        if (!trace.ok())
            return Result<Out>::error(trace.errorMessage());
        traces.push_back(trace.take());
    }
    return traces;
}

} // namespace archval::vecgen

/**
 * @file
 * Test vector generation — step 3 of the methodology (Figure 3.1).
 *
 * Converts a transition tour of the enumerated PP state graph into
 * simulation stimulus: per-cycle forced interface-signal values (the
 * paper's Verilog "force/release" commands) plus a concrete
 * instruction stream where the instruction class of each fetch is
 * fixed by the tour edge and everything that does not impact the
 * control logic — operands, data values, the precise operation within
 * a class — is chosen (biased-)randomly, exactly as Section 3.3
 * describes.
 *
 * Two details require care:
 *
 *  - Squash filtering: with the branch extension, a taken branch
 *    squashes the packet in RD, so the generator tracks pipeline
 *    occupancy along the tour and removes squashed packets from the
 *    *retired* stream that the executable specification runs.
 *  - Address constraints: the abstract "same_line" choice at a
 *    split-store conflict check must be honoured by the concrete
 *    load/store addresses, or a forced bypass over a pending store to
 *    the same word would produce a false architectural divergence.
 *    The generator records the constraint active at each load's
 *    completing probe and materializes addresses in a second pass.
 */

#ifndef ARCHVAL_VECGEN_VECTOR_GEN_HH
#define ARCHVAL_VECGEN_VECTOR_GEN_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "graph/state_graph.hh"
#include "graph/tour.hh"
#include "rtl/pp_core.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/rng.hh"

namespace archval::vecgen
{

/** One runnable test trace (a tour component turned into stimulus). */
struct TestTrace
{
    /** Forced interface-signal values, one entry per clock cycle. */
    std::vector<rtl::ForcedSignals> cycles;

    /** Instruction words in fetch order (consumed by the RTL core's
     *  abstract I-cache). */
    std::vector<uint32_t> fetchStream;

    /** Instruction words in retire order (squash-filtered); the
     *  program the executable specification runs in stream mode. */
    std::vector<uint32_t> retiredStream;

    /** Inbox words, one per SWITCH that reaches execution. */
    std::deque<uint32_t> inbox;

    /** Instructions in the fetch stream (tour accounting). */
    uint64_t instructions = 0;

    /** Index of the source tour trace. */
    size_t traceIndex = 0;
};

/** Generator statistics. */
struct VecGenStats
{
    uint64_t traces = 0;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t squashedPackets = 0;
    uint64_t constrainedLoads = 0;
};

/**
 * Generates test traces from tour components over a PP state graph.
 */
class VectorGenerator
{
  public:
    /**
     * @param model The enumerated PP FSM model (provides the choice
     *              codec, state unpacking and per-edge outputs).
     * @param seed Seed for all biased-random operand choices.
     */
    VectorGenerator(const rtl::PpFsmModel &model, uint64_t seed = 1);

    /** Convert one tour component. */
    TestTrace generate(const graph::StateGraph &graph,
                       const graph::Trace &trace, size_t trace_index = 0);

    /** Convert every tour component. */
    std::vector<TestTrace> generateAll(
        const graph::StateGraph &graph,
        const std::vector<graph::Trace> &traces);

    /** @return accumulated statistics. */
    const VecGenStats &stats() const { return stats_; }

    /**
     * Render a trace as a human-readable force/release script — the
     * artifact the paper compiles with the Verilog model.
     */
    std::string renderForceScript(const TestTrace &trace) const;

  private:
    const rtl::PpFsmModel &model_;
    fsm::ChoiceCodec codec_;
    /**
     * Operand draws are seeded per packet from a hash of (seed_,
     * tour-edge prefix), not from one sequential stream: traces that
     * share a reset-rooted prefix then materialize byte-identical
     * stimulus for it, which is what makes checkpoint reuse across
     * traces (harness::ReplayEngine) actually hit.
     */
    uint64_t seed_;
    VecGenStats stats_;
};

} // namespace archval::vecgen

#endif // ARCHVAL_VECGEN_VECTOR_GEN_HH

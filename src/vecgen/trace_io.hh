/**
 * @file
 * Test-trace file I/O.
 *
 * The paper's generator writes each tour component to an output file
 * that is later compiled with the simulation model (Figure 3.3's
 * "open output file to write tour"). This module provides the same
 * workflow: a plain-text format carrying the forced-signal schedule,
 * the fetch and retired instruction streams, and the inbox preload,
 * so traces can be generated once and replayed in separate runs.
 */

#ifndef ARCHVAL_VECGEN_TRACE_IO_HH
#define ARCHVAL_VECGEN_TRACE_IO_HH

#include <string>
#include <vector>

#include "support/status.hh"
#include "vecgen/vector_gen.hh"

namespace archval::vecgen
{

/** Serialize @p trace into the textual trace format. */
std::string serializeTrace(const TestTrace &trace);

/** Parse a trace from text. @return the trace or an error. */
Result<TestTrace> deserializeTrace(const std::string &text);

/** Write @p trace to @p path. @return true or an error. */
Result<bool> writeTraceFile(const TestTrace &trace,
                            const std::string &path);

/** Read a trace from @p path. */
Result<TestTrace> readTraceFile(const std::string &path);

/** @return the conventional file name for trace @p index,
 *  e.g. "trace_000042.avt". */
std::string traceFileName(size_t index);

/**
 * Write every trace into @p directory (created if absent).
 * @return the number written, or an error.
 */
Result<size_t> writeTraceSet(const std::vector<TestTrace> &traces,
                             const std::string &directory);

/**
 * Read all trace files from @p directory, ordered by trace index.
 */
Result<std::vector<TestTrace>> readTraceSet(
    const std::string &directory);

} // namespace archval::vecgen

#endif // ARCHVAL_VECGEN_TRACE_IO_HH

/**
 * @file
 * Top-level public API: the complete methodology of Figure 3.1 in
 * one object.
 *
 *   1. FSM model         (PpFsmModel, or any fsm::Model / HdlModel)
 *   2. state enumeration (murphi::Enumerator)
 *   3. transition tours  (graph::TourGenerator)
 *   4. test vectors      (vecgen::VectorGenerator)
 *   5. simulate+compare  (harness::VectorPlayer vs pp::RefSim)
 *
 * PpValidationFlow specializes the flow for the Protocol Processor
 * with optional fault injection; exploreModel() runs steps 2-3 for
 * any model (used for HDL-translated designs).
 */

#ifndef ARCHVAL_CORE_VALIDATION_FLOW_HH
#define ARCHVAL_CORE_VALIDATION_FLOW_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/state_graph.hh"
#include "graph/tour.hh"
#include "harness/vector_player.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "vecgen/vector_gen.hh"

namespace archval::core
{

/** Options for a full validation run. */
struct FlowOptions
{
    murphi::EnumOptions enumeration;
    graph::TourOptions tour;
    uint64_t vectorSeed = 1;
    /** Verify control lockstep on every played trace (slower). */
    bool checkLockstep = false;
    /** Stop the simulation phase at the first divergence. */
    bool stopAtFirstDivergence = false;
};

/** Report of the simulation phase. */
struct FlowReport
{
    uint64_t tracesPlayed = 0;
    uint64_t divergingTraces = 0;
    uint64_t lockstepErrors = 0;
    uint64_t cyclesSimulated = 0;
    uint64_t instructionsSimulated = 0;
    std::vector<std::string> divergences; ///< first few, for triage

    /** @return true when any trace diverged. */
    bool bugFound() const { return divergingTraces > 0; }

    /** Render a summary block. */
    std::string render() const;
};

/**
 * The full flow for the Protocol Processor. Steps are lazy: each
 * phase runs once on first demand, so benches can time them
 * separately.
 */
class PpValidationFlow
{
  public:
    explicit PpValidationFlow(const rtl::PpConfig &config,
                              FlowOptions options = {});
    ~PpValidationFlow();

    /** Step 1+2: the FSM model and its reachable state graph. */
    const graph::StateGraph &enumerate();

    /** Step 3: covering transition tours. */
    const std::vector<graph::Trace> &makeTours();

    /** Step 4: test vectors for every tour component. */
    const std::vector<vecgen::TestTrace> &makeVectors();

    /** Step 5: play all vectors against the specification with
     *  @p bugs injected into the implementation. */
    FlowReport simulate(const rtl::BugSet &bugs = {});

    /** Convenience: run everything. */
    FlowReport run(const rtl::BugSet &bugs = {});

    /** @name Accessors for intermediate products. @{ */
    const rtl::PpFsmModel &model() const { return *model_; }
    const murphi::EnumStats &enumStats() const { return enumStats_; }
    const graph::TourStats &tourStats() const { return tourStats_; }
    const vecgen::VecGenStats &vecStats() const { return vecStats_; }
    const rtl::PpConfig &config() const { return config_; }
    /** @} */

  private:
    rtl::PpConfig config_;
    FlowOptions options_;
    std::unique_ptr<rtl::PpFsmModel> model_;
    std::optional<graph::StateGraph> graph_;
    std::optional<std::vector<graph::Trace>> tours_;
    std::optional<std::vector<vecgen::TestTrace>> vectors_;
    murphi::EnumStats enumStats_;
    graph::TourStats tourStats_;
    vecgen::VecGenStats vecStats_;
};

/** Result of exploring an arbitrary model (steps 2-3). */
struct ModelExploration
{
    murphi::EnumStats enumStats;
    graph::TourStats tourStats;
    graph::GraphSummary summary;

    /** Render all three blocks. */
    std::string render() const;
};

/**
 * Enumerate and tour any synchronous model (e.g. one translated from
 * HDL); verifies tour coverage internally.
 */
ModelExploration exploreModel(const fsm::Model &model,
                              murphi::EnumOptions enum_options = {},
                              graph::TourOptions tour_options = {});

} // namespace archval::core

#endif // ARCHVAL_CORE_VALIDATION_FLOW_HH

#include "validation_flow.hh"

#include "support/status.hh"
#include "support/strings.hh"

namespace archval::core
{

std::string
FlowReport::render() const
{
    std::string out;
    out += formatString("traces played        %s\n",
                        withCommas(tracesPlayed).c_str());
    out += formatString("diverging traces     %s\n",
                        withCommas(divergingTraces).c_str());
    out += formatString("lockstep errors      %s\n",
                        withCommas(lockstepErrors).c_str());
    out += formatString("cycles simulated     %s\n",
                        withCommas(cyclesSimulated).c_str());
    out += formatString("instructions         %s\n",
                        withCommas(instructionsSimulated).c_str());
    for (const auto &diff : divergences)
        out += "  divergence: " + diff + "\n";
    return out;
}

PpValidationFlow::PpValidationFlow(const rtl::PpConfig &config,
                                   FlowOptions options)
    : config_(config), options_(options),
      model_(std::make_unique<rtl::PpFsmModel>(config))
{
    // The vector generator's condition mapping needs packed states.
    options_.enumeration.retainStates = true;
}

PpValidationFlow::~PpValidationFlow() = default;

const graph::StateGraph &
PpValidationFlow::enumerate()
{
    if (!graph_) {
        murphi::Enumerator enumerator(*model_, options_.enumeration);
        graph_ = enumerator.runOrThrow();
        enumStats_ = enumerator.stats();
    }
    return *graph_;
}

const std::vector<graph::Trace> &
PpValidationFlow::makeTours()
{
    if (!tours_) {
        graph::TourGenerator generator(enumerate(), options_.tour);
        tours_ = generator.run();
        tourStats_ = generator.stats();
        std::string check = graph::checkTourCoverage(*graph_, *tours_);
        // fatal, not panic: tour generation runs inside long-lived
        // callers (the archvald job loop); a coverage failure must
        // surface as a catchable job error, never abort the process.
        if (!check.empty())
            fatal("tour coverage check failed: " + check);
    }
    return *tours_;
}

const std::vector<vecgen::TestTrace> &
PpValidationFlow::makeVectors()
{
    if (!vectors_) {
        vecgen::VectorGenerator generator(*model_,
                                          options_.vectorSeed);
        vectors_ = generator.generateAll(enumerate(), makeTours());
        vecStats_ = generator.stats();
    }
    return *vectors_;
}

FlowReport
PpValidationFlow::simulate(const rtl::BugSet &bugs)
{
    const auto &vectors = makeVectors();
    const auto &tours = *tours_;
    harness::VectorPlayer player(config_);

    FlowReport report;
    for (size_t i = 0; i < vectors.size(); ++i) {
        harness::PlayResult play =
            options_.checkLockstep
                ? player.playChecked(*model_, *graph_, tours[i],
                                     vectors[i], bugs)
                : player.play(vectors[i], bugs);
        ++report.tracesPlayed;
        report.cyclesSimulated += play.cycles;
        report.instructionsSimulated += play.instructions;
        report.lockstepErrors += play.lockstepErrors;
        if (play.diverged) {
            ++report.divergingTraces;
            if (report.divergences.size() < 5) {
                report.divergences.push_back(formatString(
                    "trace %zu: %s", i, play.diff.c_str()));
            }
            if (options_.stopAtFirstDivergence)
                break;
        }
    }
    return report;
}

FlowReport
PpValidationFlow::run(const rtl::BugSet &bugs)
{
    enumerate();
    makeTours();
    makeVectors();
    return simulate(bugs);
}

std::string
ModelExploration::render() const
{
    std::string out;
    out += "--- state enumeration ---\n";
    out += enumStats.render();
    out += "--- state graph ---\n";
    out += graph::renderSummary(summary);
    out += "--- transition tours ---\n";
    out += tourStats.render();
    return out;
}

ModelExploration
exploreModel(const fsm::Model &model, murphi::EnumOptions enum_options,
             graph::TourOptions tour_options)
{
    ModelExploration exploration;
    murphi::Enumerator enumerator(model, enum_options);
    graph::StateGraph graph = enumerator.runOrThrow();
    exploration.enumStats = enumerator.stats();
    exploration.summary = graph::summarize(graph);

    graph::TourGenerator tours(graph, tour_options);
    auto traces = tours.run();
    exploration.tourStats = tours.stats();
    std::string check = graph::checkTourCoverage(graph, traces);
    if (!check.empty())
        fatal("tour coverage check failed: " + check); // catchable
    return exploration;
}

} // namespace archval::core

/**
 * @file
 * Disk persistence for archvald sessions — the warm state a daemon
 * restart would otherwise throw away.
 *
 * A session's expensive products (the enumerated state graph, the
 * tour corpus, and the replay warm cache's donor entries) are pure
 * functions of the design fingerprint, so they can be parked on disk
 * and picked up by a later daemon on the same `--session-dir`: the
 * first job on a matching fingerprint restores in one file read and
 * replays warm, instead of paying enumeration plus the bug-free
 * donor simulation again.
 *
 * One support::RecordFileReader/Writer file per fingerprint, named
 * by a hash of the fingerprint string. Validity rule (the same
 * posture as PpCore::Snapshot::serialize): the file header carries a
 * magic and format version, the first record carries the *full*
 * fingerprint string, and every record is CRC-guarded — a missing
 * file is a restore miss, a fingerprint mismatch (hash collision,
 * renamed file) is a miss, and anything else wrong (foreign magic,
 * stale version, truncation, flipped bit, undecodable warm entry) is
 * a restore *failure*. All three degrade to a cold build; none can
 * crash the daemon or restore wrong bytes. Outcomes are counted in
 * the `service.session_restore_*` / `service.session_saves` metrics.
 *
 * Generated vectors are deliberately not persisted: they regenerate
 * deterministically from model + graph + tours + vectorSeed (see
 * vecgen::VectorGenerator), which keeps the restored warm-cache keys
 * — full serialized trace content — exactly matching the traces a
 * restored session will replay.
 *
 * Saves are atomic (temp file + rename, see RecordFileWriter), so a
 * daemon killed mid-save leaves the previous store intact.
 */

#ifndef ARCHVAL_SERVICE_SESSION_STORE_HH
#define ARCHVAL_SERVICE_SESSION_STORE_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace archval::service
{

class Session;

class SessionStore
{
  public:
    /** @param dir Store directory; empty disables persistence (every
     *  call becomes a cheap no-op). The directory is created if
     *  missing; an uncreatable one disables the store.
     *  @param cap_bytes Total bytes the store's record files may
     *  occupy (0 = unlimited). After every save the least-recently
     *  used files (by mtime; loads touch their file) are evicted
     *  until the directory fits — the just-written file is never the
     *  victim, so a single oversize session still persists. An
     *  evicted fingerprint simply rebuilds cold on its next job. */
    explicit SessionStore(std::string dir, size_t cap_bytes = 0);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /**
     * Serialize @p session's built products (graph, tours, warm
     * entries) into its record file, atomically replacing any
     * previous version. Skips the write when nothing changed since
     * the last save. Takes the session's build mutex.
     * @return false only on a real write failure.
     */
    bool save(Session &session);

    /**
     * Restore products into @p session from its record file. The
     * caller must hold the session's build mutex and the session
     * must be cold (nothing built). On any mismatch or damage the
     * session is left untouched. @return true on a full restore.
     */
    bool loadLocked(Session &session);

    /** @return the record file path for @p fingerprint. */
    std::string pathFor(const std::string &fingerprint) const;

    /** Restore/save outcome counters (mirrored into telemetry as
     *  `service.session_restore_hits|misses|failures` and
     *  `service.session_saves|save_failures`). */
    struct Stats
    {
        uint64_t saves = 0;
        uint64_t saveFailures = 0;
        uint64_t restoreHits = 0;
        uint64_t restoreMisses = 0;
        uint64_t restoreFailures = 0;
        uint64_t evictions = 0; ///< record files removed by the cap
    };
    Stats stats() const;

  private:
    /** Change stamp of a session's persistable state (build stages +
     *  warm-entry count); save() skips when it matches the stamp of
     *  the last save. Caller holds the session's build mutex. */
    static uint64_t stampLocked(const Session &session);

    /** Evict LRU record files until the directory fits capBytes_;
     *  @p keep (the file just written) is never evicted. */
    void enforceCap(const std::string &keep);

    std::string dir_; ///< empty when disabled
    size_t capBytes_ = 0; ///< 0 = unlimited
    std::mutex evictMutex_; ///< serializes directory scans

    std::atomic<uint64_t> saves_{0};
    std::atomic<uint64_t> saveFailures_{0};
    std::atomic<uint64_t> restoreHits_{0};
    std::atomic<uint64_t> restoreMisses_{0};
    std::atomic<uint64_t> restoreFailures_{0};
    std::atomic<uint64_t> evictions_{0};
};

} // namespace archval::service

#endif // ARCHVAL_SERVICE_SESSION_STORE_HH

#include "metrics_http.hh"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "service/protocol.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace archval::service
{

namespace
{

/** Hard cap on one scrape request's header bytes. */
constexpr size_t kMaxRequestBytes = 8 * 1024;

std::string
httpResponse(int code, const char *status, const std::string &body,
             const char *content_type)
{
    std::string out = formatString(
        "HTTP/1.1 %d %s\r\n"
        "Content-Type: %s\r\n"
        "Content-Length: %zu\r\n"
        "Connection: close\r\n"
        "\r\n",
        code, status, content_type, body.size());
    out += body;
    return out;
}

} // namespace

std::string
MetricsHttpServer::start(int port, Renderer renderer)
{
    renderer_ = std::move(renderer);
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return "metrics: socket(AF_INET) failed";
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        std::string error = formatString(
            "metrics: cannot listen on port %d: %s", port,
            std::strerror(errno));
        ::close(fd);
        return error;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        port_ = ntohs(bound.sin_port);
    listenFd_ = fd;
    thread_ = std::thread([this] { serveLoop(); });
    return {};
}

void
MetricsHttpServer::stop()
{
    if (listenFd_ < 0)
        return;
    ::shutdown(listenFd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    ::close(listenFd_);
    listenFd_ = -1;
}

void
MetricsHttpServer::serveLoop()
{
    for (;;) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return; // listener shut down
        }
        // Bound a slow or stuck scraper: a peer that never finishes
        // its request header is dropped after the timeout instead of
        // wedging the (single) serve thread.
        timeval timeout{};
        timeout.tv_sec = 2;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                     sizeof(timeout));
        handleConnection(fd);
        ::close(fd);
    }
}

void
MetricsHttpServer::handleConnection(int fd)
{
    telemetry::counter("service.metrics_scrapes").add(1);
    std::string request;
    char buf[4096];
    bool complete = false;
    while (request.size() < kMaxRequestBytes) {
        ssize_t n = recvRetry(fd, buf, sizeof(buf));
        if (n <= 0)
            break; // disconnect, error or timeout
        request.append(buf, static_cast<size_t>(n));
        if (request.find("\r\n\r\n") != std::string::npos ||
            request.find("\n\n") != std::string::npos) {
            complete = true;
            break;
        }
    }

    auto answer = [&](int code, const char *status,
                      const std::string &body,
                      const char *content_type = "text/plain") {
        std::string response =
            httpResponse(code, status, body, content_type);
        sendAll(fd, response.data(), response.size());
    };

    if (!complete) {
        telemetry::counter("service.metrics_bad_requests").add(1);
        answer(400, "Bad Request", "incomplete request\n");
        return;
    }

    // Parse the request line: METHOD SP TARGET SP VERSION.
    size_t eol = request.find_first_of("\r\n");
    std::string line = request.substr(0, eol);
    size_t sp1 = line.find(' ');
    size_t sp2 = sp1 == std::string::npos
                     ? std::string::npos
                     : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.compare(sp2 + 1, 5, "HTTP/") != 0) {
        telemetry::counter("service.metrics_bad_requests").add(1);
        answer(400, "Bad Request", "malformed request line\n");
        return;
    }
    std::string method = line.substr(0, sp1);
    std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (method != "GET") {
        answer(405, "Method Not Allowed", "only GET is supported\n");
        return;
    }
    if (target != "/metrics" && target != "/metrics/") {
        answer(404, "Not Found", "try /metrics\n");
        return;
    }

    std::string body;
    try {
        body = renderer_ ? renderer_() : std::string();
    } catch (...) {
        answer(500, "Internal Server Error", "render failed\n");
        return;
    }
    answer(200, "OK", body,
           "text/plain; version=0.0.4; charset=utf-8");
}

} // namespace archval::service

#include "session_cache.hh"

#include <algorithm>

#include "support/status.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace archval::service
{

std::string
DesignSpec::fingerprint() const
{
    return formatString(
        "preset=%s lineWords=%u modelBranches=%d dualIssue=%d "
        "maxStates=%llu maxInstr=%llu nestedSplits=%d vectorSeed=%llu",
        preset.c_str(), lineWords, modelBranches, dualIssue,
        static_cast<unsigned long long>(maxStates),
        static_cast<unsigned long long>(maxInstructionsPerTrace),
        nestedPrefixSplits ? 1 : 0,
        static_cast<unsigned long long>(vectorSeed));
}

rtl::PpConfig
DesignSpec::toConfig() const
{
    rtl::PpConfig config;
    if (preset == "small")
        config = rtl::PpConfig::smallPreset();
    else if (preset == "full")
        config = rtl::PpConfig::fullPreset();
    else
        fatal("unknown design preset '" + preset + "'");
    if (lineWords > 0)
        config.lineWords = lineWords;
    if (modelBranches >= 0)
        config.modelBranches = modelBranches != 0;
    if (dualIssue >= 0)
        config.dualIssue = dualIssue != 0;
    return config;
}

namespace
{

/** "bad request" prefix: the daemon forwards these verbatim as the
 *  error frame, so the client sees which field it got wrong. */
std::string
fieldError(const char *field, const char *want)
{
    return formatString("bad request: design field '%s' must be %s",
                        field, want);
}

/**
 * Strict non-negative integer field: absent keeps the default, a
 * present field must be a JSON integer (a double like `500000.0`
 * or a string is an error — the old silent fallback-to-default
 * changed the fingerprint, and with it the results, without any
 * indication to the client).
 */
bool
readCount(const json::Value &design, const char *field,
          uint64_t &out, std::string &error)
{
    if (!design.has(field))
        return true;
    const json::Value &value = design.get(field);
    if (!value.isInt() || value.asInt() < 0) {
        error = fieldError(field, "a non-negative integer");
        return false;
    }
    out = static_cast<uint64_t>(value.asInt());
    return true;
}

/** Strict boolean field (absent keeps the default). */
bool
readFlag(const json::Value &design, const char *field, bool &out,
         std::string &error)
{
    if (!design.has(field))
        return true;
    const json::Value &value = design.get(field);
    if (!value.isBool()) {
        error = fieldError(field, "a boolean");
        return false;
    }
    out = value.asBool();
    return true;
}

} // namespace

Result<DesignSpec>
DesignSpec::fromJson(const json::Value &design)
{
    DesignSpec spec;
    if (design.isNull())
        return spec; // no design object: all defaults
    if (!design.isObject()) {
        return Result<DesignSpec>::error(
            "bad request: 'design' must be an object");
    }
    std::string error;
    if (design.has("preset")) {
        if (!design.get("preset").isString())
            return Result<DesignSpec>::error(
                fieldError("preset", "a string"));
        spec.preset = design.get("preset").asString();
    }
    uint64_t line_words = spec.lineWords;
    uint64_t enum_threads = spec.enumThreads;
    uint64_t enum_processes = spec.enumProcesses;
    bool model_branches = false;
    bool dual_issue = false;
    if (!readCount(design, "lineWords", line_words, error) ||
        !readCount(design, "maxStates", spec.maxStates, error) ||
        !readCount(design, "enumThreads", enum_threads, error) ||
        !readCount(design, "memoryBudgetBytes",
                   spec.memoryBudgetBytes, error) ||
        !readCount(design, "enumProcesses", enum_processes, error) ||
        !readCount(design, "maxInstructionsPerTrace",
                   spec.maxInstructionsPerTrace, error) ||
        !readCount(design, "vectorSeed", spec.vectorSeed, error) ||
        !readFlag(design, "nestedPrefixSplits",
                  spec.nestedPrefixSplits, error) ||
        !readFlag(design, "compiledStep", spec.compiledStep, error) ||
        !readFlag(design, "modelBranches", model_branches, error) ||
        !readFlag(design, "dualIssue", dual_issue, error)) {
        return Result<DesignSpec>::error(error);
    }
    if (design.has("spillDir")) {
        if (!design.get("spillDir").isString())
            return Result<DesignSpec>::error(
                fieldError("spillDir", "a string"));
        spec.spillDir = design.get("spillDir").asString();
    }
    spec.lineWords = static_cast<unsigned>(line_words);
    spec.enumThreads = static_cast<unsigned>(enum_threads);
    spec.enumProcesses =
        static_cast<unsigned>(std::max<uint64_t>(1, enum_processes));
    if (design.has("modelBranches"))
        spec.modelBranches = model_branches ? 1 : 0;
    if (design.has("dualIssue"))
        spec.dualIssue = dual_issue ? 1 : 0;
    return spec;
}

Session::Session(const DesignSpec &spec)
    : spec_(spec), fingerprint_(spec.fingerprint()),
      config_(spec.toConfig()),
      warm_(std::make_shared<harness::ReplayWarmCache>())
{
}

void
Session::persist()
{
    if (store_)
        store_->save(*this);
}

std::string
Session::ensure(Stage stage, const std::atomic<bool> *cancel)
{
    std::lock_guard<std::mutex> lock(buildMutex_);
    // First use of a persisted session: try the disk restore before
    // building anything. Every failure mode inside loadLocked()
    // (missing file, CRC damage, stale version, foreign fingerprint)
    // leaves the session cold and falls through to the normal build.
    if (store_ && !restoreTried_) {
        restoreTried_ = true;
        store_->loadLocked(*this);
    }
    try {
        if (!graph_) {
            if (!model_)
                model_ = std::make_unique<rtl::PpFsmModel>(config_);
            murphi::EnumOptions options;
            options.maxStates = spec_.maxStates;
            options.numThreads = std::max(1u, spec_.enumThreads);
            options.retainStates = true; // vecgen condition mapping
            options.cancelFlag = cancel;
            options.compiledStep =
                spec_.compiledStep ? murphi::StepKernel::BitSliced
                                   : murphi::StepKernel::Interpreted;
            options.memoryBudgetBytes = spec_.memoryBudgetBytes;
            options.numProcesses = std::max(1u, spec_.enumProcesses);
            options.spillDir = spec_.spillDir;
            murphi::Enumerator enumerator(*model_, options);
            Result<graph::StateGraph> result = enumerator.run();
            if (!result.ok())
                return result.errorMessage();
            graph_ = result.take();
            enumStats_ = enumerator.stats();
        }
        if (stage == Stage::Graph)
            return {};
        if (!tours_) {
            graph::TourOptions options;
            options.maxInstructionsPerTrace =
                spec_.maxInstructionsPerTrace;
            options.nestedPrefixSplits = spec_.nestedPrefixSplits;
            graph::TourGenerator generator(*graph_, options);
            auto tours = generator.run();
            std::string check =
                graph::checkTourCoverage(*graph_, tours);
            if (!check.empty())
                return "tour coverage check failed: " + check;
            tours_ = std::move(tours);
            tourStats_ = generator.stats();
        }
        if (stage == Stage::Tours)
            return {};
        if (!vectors_) {
            vecgen::VectorGenerator generator(*model_,
                                              spec_.vectorSeed);
            vectors_ = generator.generateAll(*graph_, *tours_);
        }
        return {};
    } catch (const FatalError &err) {
        // Build machinery reports bad input by throwing; to a job it
        // is an error result, never a dead daemon.
        return err.what();
    }
}

SessionCache::SessionCache(size_t max_sessions,
                           const std::string &session_dir,
                           size_t session_dir_cap_bytes)
    : store_(std::make_unique<SessionStore>(session_dir,
                                            session_dir_cap_bytes)),
      maxSessions_(std::max<size_t>(1, max_sessions))
{
}

std::shared_ptr<Session>
SessionCache::acquire(const DesignSpec &spec)
{
    const std::string key = spec.fingerprint();
    std::lock_guard<std::mutex> lock(mutex_);
    for (Slot &slot : slots_) {
        if (slot.session->fingerprint() == key) {
            slot.lastUse = ++clock_;
            ++hits_;
            telemetry::counter("service.session_hits").add(1);
            return slot.session;
        }
    }
    ++misses_;
    telemetry::counter("service.session_misses").add(1);
    // Construction validates the spec (throws FatalError on an
    // unknown preset) before anything is inserted.
    auto session = std::make_shared<Session>(spec);
    if (store_->enabled())
        session->setStore(store_.get());
    if (slots_.size() >= maxSessions_) {
        size_t victim = 0;
        for (size_t i = 1; i < slots_.size(); ++i) {
            if (slots_[i].lastUse < slots_[victim].lastUse)
                victim = i;
        }
        slots_.erase(slots_.begin() + static_cast<long>(victim));
        ++evictions_;
    }
    slots_.push_back(Slot{session, ++clock_});
    return session;
}

SessionCache::Stats
SessionCache::stats() const
{
    Stats s;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s.hits = hits_;
        s.misses = misses_;
        s.evictions = evictions_;
        s.sessions = slots_.size();
    }
    const SessionStore::Stats store = store_->stats();
    s.restoreHits = store.restoreHits;
    s.restoreMisses = store.restoreMisses;
    s.restoreFailures = store.restoreFailures;
    s.saves = store.saves;
    return s;
}

} // namespace archval::service

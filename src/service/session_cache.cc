#include "session_cache.hh"

#include <algorithm>

#include "support/status.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace archval::service
{

std::string
DesignSpec::fingerprint() const
{
    return formatString(
        "preset=%s lineWords=%u modelBranches=%d dualIssue=%d "
        "maxStates=%llu maxInstr=%llu nestedSplits=%d vectorSeed=%llu",
        preset.c_str(), lineWords, modelBranches, dualIssue,
        static_cast<unsigned long long>(maxStates),
        static_cast<unsigned long long>(maxInstructionsPerTrace),
        nestedPrefixSplits ? 1 : 0,
        static_cast<unsigned long long>(vectorSeed));
}

rtl::PpConfig
DesignSpec::toConfig() const
{
    rtl::PpConfig config;
    if (preset == "small")
        config = rtl::PpConfig::smallPreset();
    else if (preset == "full")
        config = rtl::PpConfig::fullPreset();
    else
        fatal("unknown design preset '" + preset + "'");
    if (lineWords > 0)
        config.lineWords = lineWords;
    if (modelBranches >= 0)
        config.modelBranches = modelBranches != 0;
    if (dualIssue >= 0)
        config.dualIssue = dualIssue != 0;
    return config;
}

DesignSpec
DesignSpec::fromJson(const json::Value &design)
{
    DesignSpec spec;
    if (design.get("preset").isString())
        spec.preset = design.get("preset").asString();
    spec.lineWords = static_cast<unsigned>(
        design.get("lineWords").asInt(spec.lineWords));
    if (design.has("modelBranches"))
        spec.modelBranches = design.get("modelBranches").asBool() ? 1 : 0;
    if (design.has("dualIssue"))
        spec.dualIssue = design.get("dualIssue").asBool() ? 1 : 0;
    spec.maxStates = static_cast<uint64_t>(design.get("maxStates")
                                               .asInt(static_cast<int64_t>(
                                                   spec.maxStates)));
    spec.enumThreads = static_cast<unsigned>(
        design.get("enumThreads").asInt(spec.enumThreads));
    spec.maxInstructionsPerTrace = static_cast<uint64_t>(
        design.get("maxInstructionsPerTrace").asInt(0));
    spec.nestedPrefixSplits =
        design.get("nestedPrefixSplits").asBool(false);
    spec.vectorSeed = static_cast<uint64_t>(
        design.get("vectorSeed").asInt(1));
    return spec;
}

Session::Session(const DesignSpec &spec)
    : spec_(spec), fingerprint_(spec.fingerprint()),
      config_(spec.toConfig()),
      warm_(std::make_shared<harness::ReplayWarmCache>())
{
}

std::string
Session::ensure(Stage stage, const std::atomic<bool> *cancel)
{
    std::lock_guard<std::mutex> lock(buildMutex_);
    try {
        if (!graph_) {
            if (!model_)
                model_ = std::make_unique<rtl::PpFsmModel>(config_);
            murphi::EnumOptions options;
            options.maxStates = spec_.maxStates;
            options.numThreads = std::max(1u, spec_.enumThreads);
            options.retainStates = true; // vecgen condition mapping
            options.cancelFlag = cancel;
            murphi::Enumerator enumerator(*model_, options);
            Result<graph::StateGraph> result = enumerator.run();
            if (!result.ok())
                return result.errorMessage();
            graph_ = result.take();
            enumStats_ = enumerator.stats();
        }
        if (stage == Stage::Graph)
            return {};
        if (!tours_) {
            graph::TourOptions options;
            options.maxInstructionsPerTrace =
                spec_.maxInstructionsPerTrace;
            options.nestedPrefixSplits = spec_.nestedPrefixSplits;
            graph::TourGenerator generator(*graph_, options);
            auto tours = generator.run();
            std::string check =
                graph::checkTourCoverage(*graph_, tours);
            if (!check.empty())
                return "tour coverage check failed: " + check;
            tours_ = std::move(tours);
            tourStats_ = generator.stats();
        }
        if (stage == Stage::Tours)
            return {};
        if (!vectors_) {
            vecgen::VectorGenerator generator(*model_,
                                              spec_.vectorSeed);
            vectors_ = generator.generateAll(*graph_, *tours_);
        }
        return {};
    } catch (const FatalError &err) {
        // Build machinery reports bad input by throwing; to a job it
        // is an error result, never a dead daemon.
        return err.what();
    }
}

SessionCache::SessionCache(size_t max_sessions)
    : maxSessions_(std::max<size_t>(1, max_sessions))
{
}

std::shared_ptr<Session>
SessionCache::acquire(const DesignSpec &spec)
{
    const std::string key = spec.fingerprint();
    std::lock_guard<std::mutex> lock(mutex_);
    for (Slot &slot : slots_) {
        if (slot.session->fingerprint() == key) {
            slot.lastUse = ++clock_;
            ++hits_;
            telemetry::counter("service.session_hits").add(1);
            return slot.session;
        }
    }
    ++misses_;
    telemetry::counter("service.session_misses").add(1);
    // Construction validates the spec (throws FatalError on an
    // unknown preset) before anything is inserted.
    auto session = std::make_shared<Session>(spec);
    if (slots_.size() >= maxSessions_) {
        size_t victim = 0;
        for (size_t i = 1; i < slots_.size(); ++i) {
            if (slots_[i].lastUse < slots_[victim].lastUse)
                victim = i;
        }
        slots_.erase(slots_.begin() + static_cast<long>(victim));
        ++evictions_;
    }
    slots_.push_back(Slot{session, ++clock_});
    return session;
}

SessionCache::Stats
SessionCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.sessions = slots_.size();
    return s;
}

} // namespace archval::service

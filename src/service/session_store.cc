#include "session_store.hh"

#include <algorithm>
#include <cstring>

#include <dirent.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <unistd.h>

#include "service/session_cache.hh"
#include "support/flight_recorder.hh"
#include "support/spill_store.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace archval::service
{

namespace
{

/** Record-file identity: "AVS1" + format version. Bump the version
 *  whenever any record layout below changes — stale stores then
 *  read as "no usable store" and rebuild cold. */
constexpr uint32_t kStoreMagic = 0x31535641;
constexpr uint32_t kStoreVersion = 1;

/** Structural sanity caps: a record that passed its CRC but claims
 *  sizes beyond these is from a different layout, not this one. */
constexpr uint64_t kMaxStateBits = 1u << 20;
constexpr uint64_t kMaxCount = 1ull << 32;

void
packU8(std::vector<uint8_t> &out, uint8_t value)
{
    out.push_back(value);
}

void
packU32(std::vector<uint8_t> &out, uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
packU64(std::vector<uint8_t> &out, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
packF64(std::vector<uint8_t> &out, double value)
{
    uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    packU64(out, bits);
}

/** Bounds-checked little-endian reader over one record; any overrun
 *  flips ok, so callers validate once per record. */
struct Reader
{
    const uint8_t *data;
    size_t size;
    size_t pos = 0;
    bool ok = true;

    size_t remaining() const { return size - pos; }

    uint8_t
    u8()
    {
        if (!ok || remaining() < 1) {
            ok = false;
            return 0;
        }
        return data[pos++];
    }

    uint32_t
    u32()
    {
        if (!ok || remaining() < 4) {
            ok = false;
            return 0;
        }
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value |= uint32_t(data[pos + i]) << (8 * i);
        pos += 4;
        return value;
    }

    uint64_t
    u64()
    {
        if (!ok || remaining() < 8) {
            ok = false;
            return 0;
        }
        uint64_t value = 0;
        for (int i = 0; i < 8; ++i)
            value |= uint64_t(data[pos + i]) << (8 * i);
        pos += 8;
        return value;
    }

    double
    f64()
    {
        uint64_t bits = u64();
        double value = 0.0;
        std::memcpy(&value, &bits, sizeof(value));
        return value;
    }
};

/** FNV-1a of the fingerprint — only a filename; the full string
 *  inside the file is what is actually trusted. */
uint64_t
fingerprintHash(const std::string &fingerprint)
{
    uint64_t h = 1469598103934665603ull;
    for (char c : fingerprint) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::vector<uint8_t>
serializeMeta(bool has_tours, const murphi::EnumStats &enum_stats,
              const graph::TourStats &tour_stats)
{
    std::vector<uint8_t> out;
    packU8(out, has_tours ? 1 : 0);
    packU64(out, enum_stats.numStates);
    packU64(out, enum_stats.numEdges);
    packU64(out, enum_stats.bitsPerState);
    packF64(out, enum_stats.cpuSeconds);
    packU64(out, enum_stats.memoryBytes);
    packU64(out, enum_stats.transitionsTried);
    packU64(out, enum_stats.transitionsValid);
    packU32(out, enum_stats.numThreads);
    packU64(out, enum_stats.numShards);
    packU64(out, enum_stats.minShardStates);
    packU64(out, enum_stats.maxShardStates);
    packU64(out, enum_stats.levels.size());
    for (const murphi::LevelStats &level : enum_stats.levels) {
        packU64(out, level.frontierWidth);
        packU64(out, level.newStates);
        packU64(out, level.newEdges);
        packF64(out, level.seconds);
    }
    packU64(out, tour_stats.numTraces);
    packU64(out, tour_stats.totalEdgeTraversals);
    packU64(out, tour_stats.totalInstructions);
    packU64(out, tour_stats.longestTraceEdges);
    packU64(out, tour_stats.longestTraceInstructions);
    packU64(out, tour_stats.tracesTerminatedByLimit);
    packF64(out, tour_stats.generationSeconds);
    return out;
}

bool
deserializeMeta(const std::vector<uint8_t> &rec, bool &has_tours,
                murphi::EnumStats &enum_stats,
                graph::TourStats &tour_stats)
{
    Reader in{rec.data(), rec.size()};
    has_tours = in.u8() != 0;
    enum_stats.numStates = in.u64();
    enum_stats.numEdges = in.u64();
    enum_stats.bitsPerState = in.u64();
    enum_stats.cpuSeconds = in.f64();
    enum_stats.memoryBytes = in.u64();
    enum_stats.transitionsTried = in.u64();
    enum_stats.transitionsValid = in.u64();
    enum_stats.numThreads = in.u32();
    enum_stats.numShards = in.u64();
    enum_stats.minShardStates = in.u64();
    enum_stats.maxShardStates = in.u64();
    const uint64_t levels = in.u64();
    if (!in.ok || levels > kMaxCount ||
        levels * 32 > in.remaining())
        return false;
    enum_stats.levels.resize(levels);
    for (murphi::LevelStats &level : enum_stats.levels) {
        level.frontierWidth = in.u64();
        level.newStates = in.u64();
        level.newEdges = in.u64();
        level.seconds = in.f64();
    }
    tour_stats.numTraces = in.u64();
    tour_stats.totalEdgeTraversals = in.u64();
    tour_stats.totalInstructions = in.u64();
    tour_stats.longestTraceEdges = in.u64();
    tour_stats.longestTraceInstructions = in.u64();
    tour_stats.tracesTerminatedByLimit = in.u64();
    tour_stats.generationSeconds = in.f64();
    return in.ok && in.pos == in.size;
}

std::vector<uint8_t>
serializeGraph(const graph::StateGraph &g)
{
    std::vector<uint8_t> out;
    const bool retained = g.statesRetained();
    const uint64_t num_states = g.numStates();
    const uint64_t bits = retained && num_states > 0
                              ? g.packedState(0).numBits()
                              : 0;
    packU8(out, retained ? 1 : 0);
    packU64(out, bits);
    packU64(out, num_states);
    if (retained) {
        const size_t words = (bits + 63) / 64;
        for (uint64_t s = 0; s < num_states; ++s) {
            const BitVec &state =
                g.packedState(static_cast<graph::StateId>(s));
            for (size_t w = 0; w < words; ++w) {
                const size_t lsb = w * 64;
                const size_t width =
                    std::min<size_t>(64, bits - lsb);
                packU64(out, state.getField(lsb, width));
            }
        }
    }
    const uint64_t num_edges = g.numEdges();
    packU64(out, num_edges);
    for (uint64_t i = 0; i < num_edges; ++i) {
        const graph::Edge &edge =
            g.edge(static_cast<graph::EdgeId>(i));
        packU32(out, edge.src);
        packU32(out, edge.dst);
        packU64(out, edge.choiceCode);
        packU32(out, edge.instrCount);
    }
    return out;
}

bool
deserializeGraph(const std::vector<uint8_t> &rec,
                 graph::StateGraph &g)
{
    Reader in{rec.data(), rec.size()};
    const bool retained = in.u8() != 0;
    const uint64_t bits = in.u64();
    const uint64_t num_states = in.u64();
    if (!in.ok || bits > kMaxStateBits || num_states > kMaxCount)
        return false;
    if (retained) {
        const size_t words = (bits + 63) / 64;
        if (num_states * (words * 8) > in.remaining())
            return false;
        std::vector<BitVec> packed;
        packed.reserve(num_states);
        for (uint64_t s = 0; s < num_states; ++s) {
            BitVec state(bits);
            for (size_t w = 0; w < words; ++w) {
                const size_t lsb = w * 64;
                const size_t width =
                    std::min<size_t>(64, bits - lsb);
                state.setField(lsb, width, in.u64());
            }
            packed.push_back(std::move(state));
        }
        if (!in.ok)
            return false;
        if (num_states > 0)
            g.addStates(std::move(packed));
    } else if (num_states > 0) {
        g.addStatesUnretained(num_states);
    }
    const uint64_t num_edges = in.u64();
    if (!in.ok || num_edges > kMaxCount ||
        num_edges * 20 > in.remaining())
        return false;
    std::vector<graph::Edge> batch;
    batch.reserve(num_edges);
    for (uint64_t i = 0; i < num_edges; ++i) {
        graph::Edge edge;
        edge.src = in.u32();
        edge.dst = in.u32();
        edge.choiceCode = in.u64();
        edge.instrCount = in.u32();
        // addEdges() treats out-of-range endpoints as an internal
        // invariant violation; from a disk record they are damage.
        if (edge.src >= num_states || edge.dst >= num_states)
            return false;
        batch.push_back(edge);
    }
    if (!in.ok || in.pos != in.size)
        return false;
    g.addEdges(batch);
    return true;
}

std::vector<uint8_t>
serializeTours(const std::vector<graph::Trace> &tours)
{
    std::vector<uint8_t> out;
    packU64(out, tours.size());
    for (const graph::Trace &trace : tours) {
        packU64(out, trace.edges.size());
        for (graph::EdgeId edge : trace.edges)
            packU32(out, edge);
        packU64(out, trace.instructions);
        packU8(out, trace.limitTerminated ? 1 : 0);
    }
    return out;
}

bool
deserializeTours(const std::vector<uint8_t> &rec, uint64_t num_edges,
                 std::vector<graph::Trace> &tours)
{
    Reader in{rec.data(), rec.size()};
    const uint64_t count = in.u64();
    if (!in.ok || count > kMaxCount || count * 17 > in.remaining())
        return false;
    tours.reserve(count);
    for (uint64_t t = 0; t < count; ++t) {
        graph::Trace trace;
        const uint64_t edges = in.u64();
        if (!in.ok || edges * 4 > in.remaining())
            return false;
        trace.edges.reserve(edges);
        for (uint64_t e = 0; e < edges; ++e) {
            const graph::EdgeId id = in.u32();
            if (id >= num_edges)
                return false; // dangling edge reference: damage
            trace.edges.push_back(id);
        }
        trace.instructions = in.u64();
        trace.limitTerminated = in.u8() != 0;
        tours.push_back(std::move(trace));
    }
    return in.ok && in.pos == in.size;
}

} // namespace

SessionStore::SessionStore(std::string dir, size_t cap_bytes)
    : dir_(std::move(dir)), capBytes_(cap_bytes)
{
    if (dir_.empty())
        return;
    ::mkdir(dir_.c_str(), 0777); // EEXIST is fine
    struct stat st;
    if (::stat(dir_.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        dir_.clear(); // unusable directory: persistence off
}

void
SessionStore::enforceCap(const std::string &keep)
{
    if (capBytes_ == 0)
        return;
    std::lock_guard<std::mutex> lock(evictMutex_);
    struct File
    {
        std::string path;
        uint64_t bytes;
        time_t mtime;
    };
    std::vector<File> files;
    uint64_t total = 0;
    DIR *scan = ::opendir(dir_.c_str());
    if (!scan)
        return;
    while (struct dirent *entry = ::readdir(scan)) {
        const std::string name = entry->d_name;
        if (name.rfind("session-", 0) != 0 ||
            name.size() < 4 ||
            name.compare(name.size() - 4, 4, ".avs") != 0) {
            continue; // not one of ours: never delete foreign files
        }
        const std::string path = dir_ + "/" + name;
        struct stat st;
        if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
            continue;
        files.push_back({path, static_cast<uint64_t>(st.st_size),
                         st.st_mtime});
        total += static_cast<uint64_t>(st.st_size);
    }
    ::closedir(scan);

    // Oldest mtime first; loads touch their file, so mtime order is
    // recency-of-use order.
    std::sort(files.begin(), files.end(),
              [](const File &a, const File &b) {
                  return a.mtime != b.mtime ? a.mtime < b.mtime
                                            : a.path < b.path;
              });
    for (const File &file : files) {
        if (total <= capBytes_)
            break;
        if (file.path == keep)
            continue;
        if (::unlink(file.path.c_str()) != 0)
            continue;
        total -= file.bytes;
        evictions_.fetch_add(1, std::memory_order_relaxed);
        telemetry::counter("service.session_evictions").add(1);
        flight::recordEvent(flight::EventKind::SessionEvicted, 0, 0,
                            file.path);
    }
}

std::string
SessionStore::pathFor(const std::string &fingerprint) const
{
    return formatString("%s/session-%016llx.avs", dir_.c_str(),
                        static_cast<unsigned long long>(
                            fingerprintHash(fingerprint)));
}

uint64_t
SessionStore::stampLocked(const Session &session)
{
    uint64_t stamp = 0;
    if (session.graph_)
        stamp |= 1;
    if (session.tours_)
        stamp |= 2;
    stamp |= session.warm_->stats().inserts << 2;
    return stamp;
}

bool
SessionStore::save(Session &session)
{
    if (!enabled())
        return true;
    std::lock_guard<std::mutex> lock(session.buildMutex_);
    if (!session.graph_)
        return true; // nothing worth a file yet
    const uint64_t stamp = stampLocked(session);
    if (stamp == session.savedStamp_)
        return true; // on-disk state is current
    RecordFileWriter writer(pathFor(session.fingerprint_),
                            kStoreMagic, kStoreVersion);
    bool ok = writer.ok();
    ok = ok && writer.append(reinterpret_cast<const uint8_t *>(
                                 session.fingerprint_.data()),
                             session.fingerprint_.size());
    ok = ok && writer.append(serializeMeta(session.tours_.has_value(),
                                           session.enumStats_,
                                           session.tourStats_));
    ok = ok && writer.append(serializeGraph(*session.graph_));
    if (session.tours_)
        ok = ok && writer.append(serializeTours(*session.tours_));
    if (ok) {
        for (const auto &entry : session.warm_->entries())
            ok = ok &&
                 writer.append(
                     harness::ReplayWarmCache::serializeEntry(*entry));
    }
    ok = ok && writer.commit();
    if (!ok) {
        saveFailures_.fetch_add(1, std::memory_order_relaxed);
        telemetry::counter("service.session_save_failures").add(1);
        return false;
    }
    session.savedStamp_ = stamp;
    saves_.fetch_add(1, std::memory_order_relaxed);
    telemetry::counter("service.session_saves").add(1);
    enforceCap(pathFor(session.fingerprint_));
    return true;
}

bool
SessionStore::loadLocked(Session &session)
{
    if (!enabled())
        return false;
    auto miss = [&] {
        restoreMisses_.fetch_add(1, std::memory_order_relaxed);
        telemetry::counter("service.session_restore_misses").add(1);
        return false;
    };
    auto failure = [&] {
        restoreFailures_.fetch_add(1, std::memory_order_relaxed);
        telemetry::counter("service.session_restore_failures").add(1);
        flight::recordEvent(flight::EventKind::SessionRestoreFailure,
                            0, 0, session.fingerprint_);
        return false;
    };
    const std::string path = pathFor(session.fingerprint_);
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return miss(); // never saved: the expected cold-start case
    RecordFileReader reader(path, kStoreMagic, kStoreVersion);
    if (!reader.ok())
        return failure(); // foreign magic / stale version / damage

    using RS = RecordFileReader::Status;
    std::vector<uint8_t> rec;

    if (reader.next(rec) != RS::Record)
        return failure();
    if (std::string(rec.begin(), rec.end()) != session.fingerprint_)
        return miss(); // filename-hash collision: not our store

    bool has_tours = false;
    murphi::EnumStats enum_stats;
    graph::TourStats tour_stats;
    if (reader.next(rec) != RS::Record ||
        !deserializeMeta(rec, has_tours, enum_stats, tour_stats))
        return failure();

    graph::StateGraph restored_graph;
    if (reader.next(rec) != RS::Record ||
        !deserializeGraph(rec, restored_graph))
        return failure();

    std::vector<graph::Trace> restored_tours;
    if (has_tours) {
        if (reader.next(rec) != RS::Record ||
            !deserializeTours(rec, restored_graph.numEdges(),
                              restored_tours))
            return failure();
    }

    // Warm entries trail until clean end of file. Decode them all
    // before committing anything, so a damaged tail cannot leave a
    // half-restored session.
    std::vector<std::shared_ptr<harness::ReplayWarmCache::Entry>>
        warm_entries;
    RS status;
    while ((status = reader.next(rec)) == RS::Record) {
        auto entry = harness::ReplayWarmCache::deserializeEntry(
            rec.data(), rec.size());
        if (!entry)
            return failure();
        warm_entries.push_back(std::move(entry));
    }
    if (status != RS::End)
        return failure();

    // Commit. The model is rebuilt from the config (it is itself a
    // pure function of the fingerprint); vectors regenerate on
    // demand in the usual Vectors stage.
    session.model_ =
        std::make_unique<rtl::PpFsmModel>(session.config_);
    session.graph_ = std::move(restored_graph);
    session.enumStats_ = enum_stats;
    if (has_tours) {
        session.tours_ = std::move(restored_tours);
        session.tourStats_ = tour_stats;
    }
    for (auto &entry : warm_entries)
        session.warm_->insert(std::move(entry));
    session.savedStamp_ = stampLocked(session);
    restoreHits_.fetch_add(1, std::memory_order_relaxed);
    telemetry::counter("service.session_restore_hits").add(1);
    // Mark the file recently used so the byte cap's LRU eviction
    // prefers stale fingerprints over live ones.
    ::utimes(path.c_str(), nullptr);
    return true;
}

SessionStore::Stats
SessionStore::stats() const
{
    Stats s;
    s.saves = saves_.load(std::memory_order_relaxed);
    s.saveFailures = saveFailures_.load(std::memory_order_relaxed);
    s.restoreHits = restoreHits_.load(std::memory_order_relaxed);
    s.restoreMisses =
        restoreMisses_.load(std::memory_order_relaxed);
    s.restoreFailures =
        restoreFailures_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    return s;
}

} // namespace archval::service

#include "daemon.hh"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/metrics_http.hh"
#include "service/protocol.hh"
#include "support/flight_recorder.hh"
#include "support/logging.hh"
#include "support/memusage.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace archval::service
{

/**
 * One accepted client. Lives as a shared_ptr captured by the
 * connection's reader thread and by every EventSink it registered,
 * so writes stay valid for as long as any job may still emit.
 */
struct Daemon::Connection
{
    int fd = -1;
    uint64_t id = 0; ///< fairness key for JobManager::submit
    /** Serializes whole frames onto the socket. Recursive because
     *  submit() may emit synchronously (busy rejection, daemon
     *  already stopping) while the dispatcher holds it to order
     *  `accepted` first. */
    std::recursive_mutex writeMutex;
    std::atomic<bool> dead{false};
    std::vector<uint64_t> jobIds; ///< guarded by writeMutex

    void send(const json::Value &message)
    {
        if (dead.load(std::memory_order_relaxed))
            return;
        const std::string frame = encodeFrame(message);
        std::lock_guard<std::recursive_mutex> lock(writeMutex);
        // sendAll retries EINTR and short sends; only a real
        // transport failure may mark the connection dead, so a
        // signal landing mid-write cannot silently drop every
        // remaining event for this client.
        if (!sendAll(fd, frame.data(), frame.size()))
            dead.store(true, std::memory_order_relaxed);
    }
};

namespace
{

json::Value
errorReply(const std::string &message)
{
    json::Value reply = json::Value::object();
    reply.set("type", "error");
    reply.set("message", message);
    return reply;
}

int
listenUnix(const std::string &path, std::string &error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "unix socket path too long: " + path;
        return -1;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = "socket(AF_UNIX) failed";
        return -1;
    }
    ::unlink(path.c_str()); // replace a stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        error = formatString("cannot listen on %s: %s", path.c_str(),
                             std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenTcp(int port, int &bound_port, std::string &error)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = "socket(AF_INET) failed";
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 16) != 0) {
        error = formatString("cannot listen on tcp port %d: %s", port,
                             std::strerror(errno));
        ::close(fd);
        return -1;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        bound_port = ntohs(bound.sin_port);
    return fd;
}

} // namespace

Daemon::Daemon(const Options &options)
    : options_(options),
      sessions_(options.maxSessions, options.sessionDir,
                options.sessionDirCapBytes),
      jobs_(std::make_unique<JobManager>(sessions_, options.workers,
                                         options.queueBound))
{
}

Daemon::~Daemon()
{
    stop();
    wait();
}

std::string
Daemon::start()
{
    if (options_.unixPath.empty() && options_.tcpPort < 0)
        return "no listener configured (need a socket path or port)";
    startNs_ = telemetry::nowNs();
    std::string error;
    if (!options_.unixPath.empty()) {
        unixFd_ = listenUnix(options_.unixPath, error);
        if (unixFd_ < 0)
            return error;
    }
    if (options_.tcpPort >= 0) {
        tcpFd_ = listenTcp(options_.tcpPort, boundTcpPort_, error);
        if (tcpFd_ < 0) {
            if (unixFd_ >= 0) {
                ::close(unixFd_);
                unixFd_ = -1;
            }
            return error;
        }
    }
    if (options_.metricsPort >= 0) {
        metricsServer_ = std::make_unique<MetricsHttpServer>();
        error = metricsServer_->start(options_.metricsPort, [this] {
            refreshObservabilityGauges();
            return telemetry::renderPrometheus(
                telemetry::snapshotMetrics());
        });
        if (!error.empty()) {
            metricsServer_.reset();
            if (unixFd_ >= 0) {
                ::close(unixFd_);
                unixFd_ = -1;
            }
            if (tcpFd_ >= 0) {
                ::close(tcpFd_);
                tcpFd_ = -1;
            }
            return error;
        }
    }
    // Arm the black box: ring events from every subsystem, dumped
    // with the active-job table on terminate/SIGUSR1.
    flight::FlightRecorderOptions flight_options;
    flight_options.crashDir = options_.crashDir;
    flight_options.activeJobsJson = [this] {
        return jobs_->activeJobsJson();
    };
    flight::initFlightRecorder(flight_options);
    if (unixFd_ >= 0)
        acceptThreads_.emplace_back(
            [this, fd = unixFd_] { acceptLoop(fd); });
    if (tcpFd_ >= 0)
        acceptThreads_.emplace_back(
            [this, fd = tcpFd_] { acceptLoop(fd); });
    return {};
}

void
Daemon::stop()
{
    if (stopping_.exchange(true))
        return;
    // Wake the accept threads; their accept() fails and they exit.
    if (unixFd_ >= 0)
        ::shutdown(unixFd_, SHUT_RDWR);
    if (tcpFd_ >= 0)
        ::shutdown(tcpFd_, SHUT_RDWR);
    stopCv_.notify_all();
}

void
Daemon::wait()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopCv_.wait(lock, [&] { return stopping_.load(); });
        if (stopped_)
            return;
        stopped_ = true;
    }
    for (std::thread &t : acceptThreads_)
        t.join();
    acceptThreads_.clear();
    if (unixFd_ >= 0) {
        ::close(unixFd_);
        unixFd_ = -1;
        ::unlink(options_.unixPath.c_str());
    }
    if (tcpFd_ >= 0) {
        ::close(tcpFd_);
        tcpFd_ = -1;
    }
    // Disarm the observability surfaces before tearing down what
    // their callbacks reach (the flight recorder's active-job
    // callback captures jobs_).
    metricsServer_.reset();
    flight::shutdownFlightRecorder();
    // Cancel running jobs and join the workers; terminal events
    // still reach clients whose connections are alive.
    jobs_->shutdown();
    std::vector<std::shared_ptr<Connection>> conns;
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        conns.swap(conns_);
        threads.swap(connThreads_);
    }
    for (auto &conn : conns) {
        conn->dead.store(true, std::memory_order_relaxed);
        ::shutdown(conn->fd, SHUT_RDWR); // unblock the reader thread
    }
    for (std::thread &t : threads)
        t.join();
    for (auto &conn : conns)
        ::close(conn->fd);
}

void
Daemon::acceptLoop(int listen_fd)
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_relaxed))
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return; // listener unusable
        }
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        conn->id = nextConnId_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (stopping_.load(std::memory_order_relaxed)) {
                ::close(fd);
                return;
            }
            conns_.push_back(conn);
            connThreads_.emplace_back(
                [this, conn] { serveConnection(conn); });
        }
        telemetry::counter("service.connections").add(1);
        flight::recordEvent(flight::EventKind::ConnectionOpen,
                            conn->id);
    }
}

void
Daemon::serveConnection(std::shared_ptr<Connection> conn)
{
    FrameReader reader;
    char buf[64 * 1024];
    bool protocol_ok = true;
    while (protocol_ok) {
        ssize_t n = recvRetry(conn->fd, buf, sizeof(buf));
        if (n <= 0)
            break; // disconnect (or teardown shut the fd down)
        reader.feed(buf, static_cast<size_t>(n));
        std::string payload;
        FrameReader::Status status;
        while ((status = reader.next(payload)) ==
               FrameReader::Status::Ready) {
            Result<json::Value> parsed = json::parse(payload);
            if (!parsed.ok()) {
                conn->send(errorReply("bad request: " +
                                      parsed.errorMessage()));
                flight::recordEvent(flight::EventKind::FrameError,
                                    conn->id, 0,
                                    parsed.errorMessage());
                protocol_ok = false;
                break;
            }
            handleMessage(conn, parsed.value());
        }
        if (status == FrameReader::Status::Error) {
            conn->send(errorReply("protocol error: " +
                                  reader.error()));
            flight::recordEvent(flight::EventKind::FrameError,
                                conn->id, 0, reader.error());
            protocol_ok = false;
        }
    }
    conn->dead.store(true, std::memory_order_relaxed);
    flight::recordEvent(flight::EventKind::ConnectionClosed,
                        conn->id);
    // The client is gone: nothing will read its streamed events, so
    // stop paying for its jobs.
    std::vector<uint64_t> owned;
    {
        std::lock_guard<std::recursive_mutex> lock(conn->writeMutex);
        owned.swap(conn->jobIds);
    }
    for (uint64_t id : owned)
        jobs_->cancel(id);
    if (!stopping_.load(std::memory_order_relaxed))
        ::close(conn->fd); // else wait() owns the fd
}

int
Daemon::metricsPort() const
{
    return metricsServer_ ? metricsServer_->port() : -1;
}

void
Daemon::refreshObservabilityGauges() const
{
    telemetry::sampleProcessMemory();
    telemetry::gauge("service.uptime_seconds")
        .set(static_cast<int64_t>(
            (telemetry::nowNs() - startNs_) / 1000000000ull));
    const SessionCache::Stats cache = sessions_.stats();
    telemetry::gauge("service.sessions")
        .set(static_cast<int64_t>(cache.sessions));
}

json::Value
Daemon::statsFrame() const
{
    refreshObservabilityGauges();
    json::Value reply = json::Value::object();
    reply.set("type", "stats");
    reply.set("uptimeSeconds",
              double(telemetry::nowNs() - startNs_) / 1e9);
    json::Value build = json::Value::object();
#if defined(__clang__)
    build.set("compiler", formatString("clang %d.%d", __clang_major__,
                                       __clang_minor__));
#elif defined(__GNUC__)
    build.set("compiler", formatString("gcc %d.%d", __GNUC__,
                                       __GNUC_MINOR__));
#else
    build.set("compiler", "unknown");
#endif
#ifdef NDEBUG
    build.set("assertions", false);
#else
    build.set("assertions", true);
#endif
    reply.set("build", std::move(build));
    reply.set("queue", jobs_->overviewJson());
    const SessionCache::Stats cache = sessions_.stats();
    json::Value sessions = json::Value::object();
    sessions.set("sessions", static_cast<int64_t>(cache.sessions));
    sessions.set("hits", static_cast<int64_t>(cache.hits));
    sessions.set("misses", static_cast<int64_t>(cache.misses));
    sessions.set("evictions",
                 static_cast<int64_t>(cache.evictions));
    sessions.set("restoreHits",
                 static_cast<int64_t>(cache.restoreHits));
    sessions.set("restoreMisses",
                 static_cast<int64_t>(cache.restoreMisses));
    sessions.set("restoreFailures",
                 static_cast<int64_t>(cache.restoreFailures));
    sessions.set("saves", static_cast<int64_t>(cache.saves));
    reply.set("sessions", std::move(sessions));
    json::Value process = json::Value::object();
    process.set("rssBytes", static_cast<int64_t>(currentRssBytes()));
    process.set("peakRssBytes",
                static_cast<int64_t>(peakRssBytes()));
    reply.set("process", std::move(process));
    json::Value flight_info = json::Value::object();
    flight_info.set("enabled", flight::flightRecorderEnabled());
    flight_info.set("droppedEvents", static_cast<int64_t>(
                                         flight::droppedFlightEvents()));
    reply.set("flight", std::move(flight_info));
    // The full registry, canonical JSON (same flattening the bench
    // emissions embed).
    Result<json::Value> metrics = json::parse(
        telemetry::metricsJson(telemetry::snapshotMetrics()));
    reply.set("metrics",
              metrics.ok() ? metrics.take() : json::Value::object());
    return reply;
}

void
Daemon::handleMessage(const std::shared_ptr<Connection> &conn,
                      const json::Value &message)
{
    const std::string &verb = message.get("verb").asString();
    if (verb == "ping") {
        json::Value reply = json::Value::object();
        reply.set("type", "pong");
        conn->send(reply);
        return;
    }
    if (verb == "stats") {
        conn->send(statsFrame());
        return;
    }
    if (verb == "status") {
        uint64_t id = static_cast<uint64_t>(
            message.get("job").asInt(0));
        std::optional<JobInfo> info = jobs_->status(id);
        if (!info) {
            conn->send(errorReply(
                formatString("unknown job %llu",
                             static_cast<unsigned long long>(id))));
            return;
        }
        json::Value reply = json::Value::object();
        reply.set("type", "status");
        reply.set("job", static_cast<int64_t>(info->id));
        reply.set("verb", info->verb);
        reply.set("state", info->state);
        reply.set("detail", info->detail);
        conn->send(reply);
        return;
    }
    if (verb == "cancel") {
        uint64_t id = static_cast<uint64_t>(
            message.get("job").asInt(0));
        json::Value reply = json::Value::object();
        reply.set("type", "cancel");
        reply.set("job", static_cast<int64_t>(id));
        reply.set("ok", jobs_->cancel(id));
        conn->send(reply);
        return;
    }
    if (verb == "list") {
        json::Value reply = json::Value::object();
        reply.set("type", "jobs");
        json::Value jobs = json::Value::array();
        for (const JobInfo &info : jobs_->list()) {
            json::Value rec = json::Value::object();
            rec.set("job", static_cast<int64_t>(info.id));
            rec.set("verb", info.verb);
            rec.set("state", info.state);
            rec.set("detail", info.detail);
            jobs.push(std::move(rec));
        }
        reply.set("jobs", std::move(jobs));
        conn->send(reply);
        return;
    }
    if (verb == "shutdown") {
        json::Value reply = json::Value::object();
        reply.set("type", "shutting_down");
        conn->send(reply);
        logInfo("archvald: shutdown requested by client");
        stop();
        return;
    }

    // Job verbs.
    Result<JobRequest> request = JobRequest::fromJson(message);
    if (!request.ok()) {
        conn->send(errorReply(request.errorMessage()));
        return;
    }
    // Hold the write lock across submit so the `accepted` frame hits
    // the wire before any event the job emits.
    std::lock_guard<std::recursive_mutex> lock(conn->writeMutex);
    std::weak_ptr<Connection> weak = conn;
    uint64_t id = jobs_->submit(
        request.take(),
        [weak](const json::Value &event) {
            if (auto c = weak.lock())
                c->send(event);
        },
        conn->id);
    std::optional<JobInfo> info = jobs_->status(id);
    if (info && info->state == "rejected")
        return; // admission control already sent the busy frame
    conn->jobIds.push_back(id);
    json::Value accepted = json::Value::object();
    accepted.set("type", "accepted");
    accepted.set("job", static_cast<int64_t>(id));
    accepted.set("verb", verb);
    conn->send(accepted);
}

} // namespace archval::service

/**
 * @file
 * Cross-request state for the archvald daemon: sessions keyed by
 * design/configuration fingerprint.
 *
 * The expensive products of the validation flow — the enumerated
 * state graph, the tour corpus, the generated vectors and the replay
 * engine's cross-batch warm cache — depend only on the design
 * configuration and the generation parameters, never on which client
 * asked. A Session owns one such product chain; the SessionCache
 * maps a DesignSpec fingerprint to its Session so a repeat request
 * (any client, any connection) reuses everything the first request
 * built: repeat replays skip enumeration, tour generation, vector
 * generation *and* — through the shared harness::ReplayWarmCache —
 * the bug-free donor simulation itself.
 *
 * Validity rule: the fingerprint string is the cache key and is a
 * pure function of every field of DesignSpec that influences any
 * cached product (config fields, enumeration limit, tour and vector
 * parameters). Two requests share a session iff their fingerprints
 * are equal; a request that changes *any* generation-relevant knob
 * gets a fresh session. Nothing is ever patched in place.
 *
 * Sessions build lazily and stage-by-stage under a per-session
 * mutex: concurrent jobs on the same fingerprint serialize their
 * build (the second waits, then finds the stage done), while jobs on
 * different fingerprints proceed independently. A build abandoned by
 * cancellation or error leaves earlier stages intact — the next
 * request resumes from the last completed stage.
 */

#ifndef ARCHVAL_SERVICE_SESSION_CACHE_HH
#define ARCHVAL_SERVICE_SESSION_CACHE_HH

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "graph/state_graph.hh"
#include "graph/tour.hh"
#include "harness/replay_engine.hh"
#include "murphi/enumerator.hh"
#include "rtl/pp_fsm_model.hh"
#include "service/session_store.hh"
#include "support/json.hh"
#include "support/status.hh"
#include "vecgen/vector_gen.hh"

namespace archval::service
{

/**
 * Everything that identifies a cached session. Fields mirror the
 * `design` object of a job request; defaults are the small-preset
 * service shape.
 */
struct DesignSpec
{
    std::string preset = "small"; ///< "small" | "full"
    /** Config overrides; 0 / -1 keep the preset value. */
    unsigned lineWords = 0;
    int modelBranches = -1; ///< tri-state: -1 preset, 0 off, 1 on
    int dualIssue = -1;

    /** Enumeration guard (murphi::EnumOptions::maxStates). */
    uint64_t maxStates = 500'000;
    unsigned enumThreads = 1;

    /** Expand frontiers with the compiled bit-sliced step kernel
     *  (murphi::StepKernel::BitSliced); models without a compiled
     *  form fall back to the interpreter. Excluded from the
     *  fingerprint like enumThreads: the graph is bit-identical
     *  either way, so it cannot invalidate a cached product. */
    bool compiledStep = false;

    /** Out-of-core enumeration knobs (murphi::EnumOptions). All
     *  three are excluded from the fingerprint for the same reason
     *  as enumThreads/compiledStep: the out-of-core search is held
     *  to byte-identity with the in-memory one, so neither the
     *  residency budget, the worker-process count nor the spill
     *  directory can change any cached product. */
    uint64_t memoryBudgetBytes = 0; ///< 0 = fully in-memory
    unsigned enumProcesses = 1;     ///< forked expansion workers
    std::string spillDir;           ///< spill root ("" = $TMPDIR)

    /** Tour generation (graph::TourOptions). */
    uint64_t maxInstructionsPerTrace = 0;
    bool nestedPrefixSplits = false;

    /** Vector generation seed. */
    uint64_t vectorSeed = 1;

    /**
     * Canonical key: every generation-relevant field rendered as
     * `name=value`, space-separated, fixed order. Equal fingerprints
     * iff equal specs — the SessionCache validity rule.
     * (enumThreads is excluded: the graph is bit-identical for every
     * worker count, so it cannot invalidate a cached product.)
     */
    std::string fingerprint() const;

    /** @return the RTL configuration. @throws FatalError on an
     *  unknown preset — a client error, never a process exit. */
    rtl::PpConfig toConfig() const;

    /**
     * Parse the `design` object of a request. Absent fields keep
     * their defaults; a present field of the wrong type is an error
     * (answered as a `bad request` frame), never a silent default —
     * a client sending `"maxStates": 500000.0` must not land on a
     * different fingerprint than the 500000 it meant.
     */
    static Result<DesignSpec> fromJson(const json::Value &design);
};

/**
 * One cached design session: the product chain plus the shared
 * replay warm cache. Thread-safe; see file comment for the build
 * discipline.
 */
class Session
{
  public:
    /** Build stages, each implying the ones before it. */
    enum class Stage
    {
        Graph,   ///< model + enumerated state graph
        Tours,   ///< + covering transition tours
        Vectors, ///< + generated test vectors
    };

    explicit Session(const DesignSpec &spec);

    /**
     * Ensure the chain is built through @p stage. Serializes with
     * other builders of this session; returns an empty string on
     * success or the failure/cancellation message. @p cancel (may be
     * null) aborts the enumeration stage cooperatively.
     */
    std::string ensure(Stage stage, const std::atomic<bool> *cancel);

    /** @name Products (valid after a successful ensure()). @{ */
    const rtl::PpConfig &config() const { return config_; }
    const rtl::PpFsmModel &model() const { return *model_; }
    const graph::StateGraph &graph() const { return *graph_; }
    const std::vector<graph::Trace> &tours() const { return *tours_; }
    const std::vector<vecgen::TestTrace> &vectors() const
    {
        return *vectors_;
    }
    const murphi::EnumStats &enumStats() const { return enumStats_; }
    const graph::TourStats &tourStats() const { return tourStats_; }
    /** @} */

    /** The session's cross-batch replay warm cache (shared by every
     *  replay/bughunt job on this session). */
    const std::shared_ptr<harness::ReplayWarmCache> &warmCache() const
    {
        return warm_;
    }

    const DesignSpec &spec() const { return spec_; }
    const std::string &fingerprint() const { return fingerprint_; }

    /** Attach the persistent store (done once by SessionCache right
     *  after construction, before the session is shared). The first
     *  ensure() then attempts a restore before building anything. */
    void setStore(SessionStore *store) { store_ = store; }

    /** Persist built products through the attached store (no-op
     *  without one, or when nothing changed since the last save).
     *  Called by the JobManager after each completed job. */
    void persist();

  private:
    friend class SessionStore; ///< serializes the guarded products

    DesignSpec spec_;
    std::string fingerprint_;
    rtl::PpConfig config_;
    std::shared_ptr<harness::ReplayWarmCache> warm_;
    SessionStore *store_ = nullptr; ///< null = memory-only session

    std::mutex buildMutex_; ///< serializes stage building
    bool restoreTried_ = false; ///< disk restore attempted (once)
    uint64_t savedStamp_ = 0;   ///< stampLocked() at the last save
    std::unique_ptr<rtl::PpFsmModel> model_;
    std::optional<graph::StateGraph> graph_;
    std::optional<std::vector<graph::Trace>> tours_;
    std::optional<std::vector<vecgen::TestTrace>> vectors_;
    murphi::EnumStats enumStats_;
    graph::TourStats tourStats_;
};

/**
 * Fingerprint-keyed session store with LRU eviction. acquire()
 * returns a shared handle, so an evicted session stays alive for
 * jobs still running on it — eviction only stops *new* requests from
 * finding it.
 */
class SessionCache
{
  public:
    /** @param max_sessions LRU capacity.
     *  @param session_dir Persistence directory (see SessionStore);
     *  empty keeps sessions memory-only.
     *  @param session_dir_cap_bytes On-disk size cap for the store's
     *  record files (0 = unlimited; see SessionStore). */
    explicit SessionCache(size_t max_sessions = 4,
                          const std::string &session_dir = {},
                          size_t session_dir_cap_bytes = 0);

    /** Find-or-create the session for @p spec. @throws FatalError
     *  for an invalid spec (unknown preset). */
    std::shared_ptr<Session> acquire(const DesignSpec &spec);

    /** The persistence layer (always present; disabled when no
     *  session_dir was given). */
    SessionStore &store() { return *store_; }

    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        size_t sessions = 0;
        /** Disk-restore outcomes (SessionStore::Stats mirror). */
        uint64_t restoreHits = 0;
        uint64_t restoreMisses = 0;
        uint64_t restoreFailures = 0;
        uint64_t saves = 0;
    };
    Stats stats() const;

  private:
    struct Slot
    {
        std::shared_ptr<Session> session;
        uint64_t lastUse = 0;
    };

    mutable std::mutex mutex_;
    std::unique_ptr<SessionStore> store_;
    size_t maxSessions_;
    uint64_t clock_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    std::vector<Slot> slots_; ///< tiny N; linear scan is fine
};

} // namespace archval::service

#endif // ARCHVAL_SERVICE_SESSION_CACHE_HH

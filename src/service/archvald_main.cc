/**
 * @file
 * `archvald` — the validation service daemon.
 *
 * Usage:
 *   archvald --socket /tmp/archval.sock [--workers N] [--sessions N]
 *   archvald --tcp 0          # loopback TCP, ephemeral port
 *
 * Prints one `archvald listening ...` line to stdout once the
 * listeners are up (scripts parse the bound TCP port from it), then
 * serves until a client sends the `shutdown` verb. Telemetry follows
 * the usual environment: ARCHVAL_TRACE, ARCHVAL_HEARTBEAT,
 * ARCHVAL_HEARTBEAT_DELTAS.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/daemon.hh"
#include "support/telemetry.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--socket PATH] [--tcp PORT] [--workers N] "
        "[--sessions N] [--session-dir PATH] [--session-cap-mb N] "
        "[--queue-bound N] [--metrics-port PORT] [--crash-dir PATH]\n"
        "  --socket PATH      listen on a unix-domain socket\n"
        "  --tcp PORT         listen on loopback TCP (0 = ephemeral)\n"
        "  --workers N        concurrent job executors (default 2)\n"
        "  --sessions N       session cache capacity (default 4)\n"
        "  --session-dir PATH persist sessions here across restarts\n"
        "  --session-cap-mb N cap the session dir at N MiB, evicting\n"
        "                     least-recently-used session files\n"
        "                     (default unlimited)\n"
        "  --queue-bound N    reject jobs past N queued (default "
        "64)\n"
        "  --metrics-port P   serve Prometheus GET /metrics on\n"
        "                     loopback port P (0 = ephemeral)\n"
        "  --crash-dir PATH   write flight-recorder crash reports\n"
        "                     here on std::terminate or SIGUSR1\n"
        "                     (default: current directory)\n",
        argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace archval;

    service::Daemon::Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--socket") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            options.unixPath = v;
        } else if (arg == "--tcp") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            options.tcpPort = std::atoi(v);
        } else if (arg == "--workers") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            options.workers =
                static_cast<unsigned>(std::max(1, std::atoi(v)));
        } else if (arg == "--sessions") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            options.maxSessions =
                static_cast<size_t>(std::max(1, std::atoi(v)));
        } else if (arg == "--session-dir") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            options.sessionDir = v;
        } else if (arg == "--session-cap-mb") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            options.sessionDirCapBytes =
                static_cast<size_t>(std::max(0, std::atoi(v))) *
                (size_t{1} << 20);
        } else if (arg == "--queue-bound") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            options.queueBound =
                static_cast<size_t>(std::max(1, std::atoi(v)));
        } else if (arg == "--metrics-port") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            options.metricsPort = std::atoi(v);
        } else if (arg == "--crash-dir") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            options.crashDir = v;
        } else {
            return usage(argv[0]);
        }
    }
    if (options.unixPath.empty() && options.tcpPort < 0)
        return usage(argv[0]);
    if (options.crashDir.empty())
        options.crashDir = "."; // a dead daemon always leaves evidence

    std::signal(SIGPIPE, SIG_IGN);
    telemetry::initTelemetryFromEnv();

    service::Daemon daemon(options);
    std::string error = daemon.start();
    if (!error.empty()) {
        std::fprintf(stderr, "archvald: %s\n", error.c_str());
        return 1;
    }
    std::printf("archvald listening");
    if (!options.unixPath.empty())
        std::printf(" socket=%s", options.unixPath.c_str());
    if (options.tcpPort >= 0)
        std::printf(" tcp=%d", daemon.tcpPort());
    if (daemon.metricsPort() >= 0)
        std::printf(" metrics=%d", daemon.metricsPort());
    std::printf("\n");
    std::fflush(stdout);

    daemon.wait();
    std::printf("archvald stopped\n");
    return 0;
}

#include "protocol.hh"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>

#include "support/status.hh"
#include "support/strings.hh"

namespace archval::service
{

bool
sendAll(int fd, const void *data, size_t size)
{
    const char *p = static_cast<const char *>(data);
    size_t off = 0;
    while (off < size) {
        // MSG_NOSIGNAL: a peer that vanished mid-stream must produce
        // EPIPE here, not SIGPIPE for the process.
        ssize_t n = ::send(fd, p + off, size - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue; // a signal interrupted us; the peer is fine
            return false;
        }
        // n == 0 is not a transport error (send never reports a
        // closed peer that way); just try the remainder again.
        off += static_cast<size_t>(n);
    }
    return true;
}

ssize_t
recvRetry(int fd, void *buf, size_t size)
{
    while (true) {
        ssize_t n = ::recv(fd, buf, size, 0);
        if (n < 0 && errno == EINTR)
            continue; // a signal interrupted us, not a disconnect
        return n; // data, 0 = orderly shutdown, or a real error
    }
}

std::string
encodeFrame(const std::string &payload)
{
    if (payload.empty() || payload.size() > kMaxFrameBytes) {
        fatal(formatString("unsendable frame payload (%zu bytes)",
                           payload.size()));
    }
    uint32_t len = static_cast<uint32_t>(payload.size());
    std::string out;
    out.reserve(4 + payload.size());
    out.push_back(static_cast<char>(len & 0xff));
    out.push_back(static_cast<char>((len >> 8) & 0xff));
    out.push_back(static_cast<char>((len >> 16) & 0xff));
    out.push_back(static_cast<char>((len >> 24) & 0xff));
    out += payload;
    return out;
}

std::string
encodeFrame(const json::Value &message)
{
    return encodeFrame(message.serialize());
}

void
FrameReader::feed(const void *data, size_t size)
{
    if (failed_)
        return;
    // Drop the already-extracted prefix before growing the buffer,
    // so a long-lived connection's memory stays bounded by one
    // frame, not by its history.
    if (consumed_ > 0) {
        buffer_.erase(0, consumed_);
        consumed_ = 0;
    }
    buffer_.append(static_cast<const char *>(data), size);
}

FrameReader::Status
FrameReader::next(std::string &payload)
{
    if (failed_)
        return Status::Error;
    const size_t avail = buffer_.size() - consumed_;
    if (avail < 4)
        return Status::NeedMore;
    const unsigned char *p = reinterpret_cast<const unsigned char *>(
        buffer_.data() + consumed_);
    const uint32_t len = uint32_t(p[0]) | (uint32_t(p[1]) << 8) |
                         (uint32_t(p[2]) << 16) |
                         (uint32_t(p[3]) << 24);
    if (len == 0 || len > kMaxFrameBytes) {
        failed_ = true;
        error_ = formatString("bad frame length %u (max %zu)", len,
                              kMaxFrameBytes);
        return Status::Error;
    }
    if (avail < 4 + size_t(len))
        return Status::NeedMore;
    payload.assign(buffer_, consumed_ + 4, len);
    consumed_ += 4 + size_t(len);
    return Status::Ready;
}

} // namespace archval::service

/**
 * @file
 * `archval_client` — submit a job to a running archvald and stream
 * its events.
 *
 * Usage:
 *   archval_client --socket PATH <verb> [options]
 *   archval_client --tcp PORT    <verb> [options]
 *
 * Verbs: enumerate | tour | replay | fuzz | bughunt (streamed jobs)
 *        ping | status | cancel | list | stats | shutdown (single
 *        reply; `stats --watch` refreshes a live dashboard instead)
 *
 * Job options: --preset small|full, --line-words N, --max-states N,
 * --enum-threads N, --memory-budget-mb N, --enum-processes N,
 * --spill-dir PATH, --vector-seed N, --bugs bug1,bug4 (names or
 * indices), --threads N, --stride N, --budget N, --rounds N,
 * --round-instructions N, --seed N. Control options: --job N.
 * `--request JSON` sends a raw request object instead (the verb
 * argument is still required and overrides the object's).
 * `--json` prints each received event as one raw JSON line.
 *
 * Exit code mirrors the verdict: 0 clean, 1 usage/transport error,
 * 2 divergence or bug detected, 3 job failed, 4 job cancelled.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "service/protocol.hh"
#include "support/json.hh"

namespace
{

using archval::json::Value;
using archval::service::FrameReader;

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s (--socket PATH | --tcp PORT) VERB "
                 "[options]\n"
                 "run '%s --help' for the option list\n",
                 argv0, argv0);
    return 1;
}

void
help(const char *argv0)
{
    std::printf(
        "usage: %s (--socket PATH | --tcp PORT) VERB [options]\n"
        "\n"
        "job verbs (stream events until the terminal one):\n"
        "  enumerate | tour | replay | fuzz | bughunt\n"
        "control verbs (one reply frame):\n"
        "  ping | status --job N | cancel --job N | list | stats | "
        "shutdown\n"
        "\n"
        "transport:\n"
        "  --socket PATH        unix socket of a running archvald\n"
        "  --tcp PORT           loopback TCP port instead\n"
        "  --json               print raw protocol frames, one per "
        "line\n"
        "  --request JSON       send a raw request object (ignores "
        "VERB options)\n"
        "  --watch              with the stats verb: redraw a live\n"
        "                       dashboard until interrupted\n"
        "  --interval-ms N      stats --watch refresh period "
        "(default 1000)\n"
        "\n"
        "design fingerprint (selects/creates the daemon session):\n"
        "  --preset NAME        model preset (default small)\n"
        "  --line-words N       cache line words\n"
        "  --max-states N       enumeration state cap\n"
        "  --enum-threads N     enumeration workers (not part of "
        "the fingerprint)\n"
        "  --compiled-step      bit-sliced compiled step kernel "
        "(not part of the fingerprint)\n"
        "  --memory-budget-mb N out-of-core enumeration residency "
        "budget in MiB (not part of the fingerprint)\n"
        "  --memory-budget-kb N same, in KiB\n"
        "  --enum-processes N   forked enumeration worker processes "
        "(not part of the fingerprint)\n"
        "  --spill-dir PATH     enumeration spill root (not part of "
        "the fingerprint)\n"
        "  --vector-seed N      vector generation seed\n"
        "\n"
        "job options:\n"
        "  --bugs a,b,...       inject bugs (bug1..bug6 or 0-based "
        "indices)\n"
        "  --threads N          replay/fuzz workers\n"
        "  --stride N           replay checkpoint stride\n"
        "  --budget N           bughunt random budget "
        "(instructions)\n"
        "  --rounds N           fuzz campaign rounds\n"
        "  --round-instructions N  fuzz instructions per round\n"
        "  --seed N             fuzz/bughunt seed\n"
        "  --job N              target job id for status/cancel\n"
        "\n"
        "exit codes: 0 clean, 1 usage/transport, 2 bug detected, "
        "3 job error, 4 cancelled\n",
        argv0);
}

int
connectUnix(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Block for the next event frame. @return false on disconnect or
 *  protocol damage. */
bool
nextEvent(int fd, FrameReader &reader, Value &event)
{
    std::string payload;
    char buf[64 * 1024];
    while (true) {
        FrameReader::Status status = reader.next(payload);
        if (status == FrameReader::Status::Ready) {
            auto parsed = archval::json::parse(payload);
            if (!parsed.ok()) {
                std::fprintf(stderr, "archval_client: bad event: %s\n",
                             parsed.errorMessage().c_str());
                return false;
            }
            event = parsed.take();
            return true;
        }
        if (status == FrameReader::Status::Error) {
            std::fprintf(stderr, "archval_client: %s\n",
                         reader.error().c_str());
            return false;
        }
        // recvRetry retries EINTR, so a signal landing mid-stream
        // (SIGWINCH, a profiler's SIGPROF, ...) cannot masquerade as
        // a server disconnect and kill the CLI between two events.
        ssize_t n = archval::service::recvRetry(fd, buf, sizeof(buf));
        if (n <= 0)
            return false; // orderly shutdown or a real error
        reader.feed(buf, static_cast<size_t>(n));
    }
}

void
printEvent(const Value &event, bool raw)
{
    if (raw) {
        std::printf("%s\n", event.serialize().c_str());
        std::fflush(stdout);
        return;
    }
    const std::string &type = event.get("type").asString();
    long long job = event.get("job").asInt(-1);
    if (type == "accepted") {
        std::printf("job %lld accepted (%s)\n", job,
                    event.get("verb").asString().c_str());
    } else if (type == "started") {
        std::printf("job %lld started\n", job);
    } else if (type == "progress") {
        std::printf("job %lld progress %s %s\n", job,
                    event.get("phase").asString().c_str(),
                    event.get("detail").serialize().c_str());
    } else if (type == "metrics") {
        std::printf("job %lld metrics (%zu entries)\n", job,
                    event.get("metrics").members().size());
    } else if (type == "result") {
        Value summary = event;
        // The per-trace plays array is for machine comparison; keep
        // the human view short.
        if (summary.has("plays"))
            summary.set("plays",
                        Value(static_cast<int64_t>(
                            event.get("plays").items().size())));
        std::printf("job %lld result %s\n", job,
                    summary.serialize().c_str());
    } else if (type == "error") {
        std::printf("job %lld error: %s\n", job,
                    event.get("message").asString().c_str());
    } else if (type == "cancelled") {
        std::printf("job %lld cancelled\n", job);
    } else {
        std::printf("%s\n", event.serialize().c_str());
    }
    std::fflush(stdout);
}

/** Match a label-suffixed histogram sample key exported by the stats
 *  frame, e.g. `service.job_run_seconds{verb=replay}.count`.
 *  @return true and fill @p verb / @p field on a match. */
bool
parseVerbMetric(const std::string &key, const char *base,
                std::string &verb, std::string &field)
{
    const std::string prefix = std::string(base) + "{verb=";
    if (key.compare(0, prefix.size(), prefix) != 0)
        return false;
    size_t close = key.find('}', prefix.size());
    if (close == std::string::npos || close + 1 >= key.size() ||
        key[close + 1] != '.')
        return false;
    verb = key.substr(prefix.size(), close - prefix.size());
    field = key.substr(close + 2);
    return true;
}

/** One dashboard row per job class (verb). */
struct JobClassRow {
    uint64_t done = 0;
    double waitSum = 0.0;
    uint64_t waitCount = 0;
    double runSum = 0.0;
    double runP90 = 0.0;
};

void
printStatsDashboard(const Value &frame, bool clear)
{
    if (clear)
        std::printf("\x1b[H\x1b[2J");
    const Value &queue = frame.get("queue");
    const Value &sessions = frame.get("sessions");
    const Value &process = frame.get("process");
    std::printf("archvald up %.1fs  queue %lld/%lld (%lld clients)  "
                "sessions %lld hit %lld miss %lld  "
                "rss %.1f MiB peak %.1f MiB\n",
                frame.get("uptimeSeconds").asDouble(),
                (long long)queue.get("queued").asInt(),
                (long long)queue.get("bound").asInt(),
                (long long)queue.get("clients").asInt(),
                (long long)sessions.get("sessions").asInt(),
                (long long)sessions.get("hits").asInt(),
                (long long)sessions.get("misses").asInt(),
                process.get("rssBytes").asDouble() /
                    (1024.0 * 1024.0),
                process.get("peakRssBytes").asDouble() /
                    (1024.0 * 1024.0));
    const Value &states = queue.get("states");
    if (!states.members().empty()) {
        std::printf("jobs:");
        for (const auto &kv : states.members())
            std::printf(" %s=%lld", kv.first.c_str(),
                        (long long)kv.second.asInt());
        std::printf("\n");
    }

    std::map<std::string, JobClassRow> rows;
    for (const auto &kv : frame.get("metrics").members()) {
        std::string verb, field;
        if (parseVerbMetric(kv.first, "service.job_run_seconds",
                            verb, field)) {
            JobClassRow &row = rows[verb];
            if (field == "count")
                row.done = (uint64_t)kv.second.asInt();
            else if (field == "sum")
                row.runSum = kv.second.asDouble();
            else if (field == "p90")
                row.runP90 = kv.second.asDouble();
        } else if (parseVerbMetric(kv.first,
                                   "service.job_queue_wait_seconds",
                                   verb, field)) {
            JobClassRow &row = rows[verb];
            if (field == "count")
                row.waitCount = (uint64_t)kv.second.asInt();
            else if (field == "sum")
                row.waitSum = kv.second.asDouble();
        }
    }
    std::printf("%-10s %8s %12s %12s %12s\n", "VERB", "DONE",
                "WAIT-MS", "RUN-MS", "RUN-P90-MS");
    for (const auto &kv : rows) {
        const JobClassRow &row = kv.second;
        double wait_ms = row.waitCount
                             ? row.waitSum / (double)row.waitCount * 1e3
                             : 0.0;
        double run_ms =
            row.done ? row.runSum / (double)row.done * 1e3 : 0.0;
        std::printf("%-10s %8llu %12.2f %12.2f %12.2f\n",
                    kv.first.c_str(),
                    (unsigned long long)row.done, wait_ms, run_ms,
                    row.runP90 * 1e3);
    }
    if (rows.empty())
        std::printf("(no jobs completed yet)\n");
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    int tcp_port = -1;
    std::string verb;
    bool raw = false;
    bool watch = false;
    int64_t interval_ms = 1000;
    std::string raw_request;

    Value request = Value::object();
    Value design = Value::object();
    Value bugs = Value::array();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        auto intValue = [&](int64_t &out) {
            const char *v = value();
            if (!v)
                return false;
            out = std::atoll(v);
            return true;
        };
        int64_t n = 0;
        if (arg == "--socket") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            socket_path = v;
        } else if (arg == "--tcp") {
            if (!intValue(n))
                return usage(argv[0]);
            tcp_port = static_cast<int>(n);
        } else if (arg == "--json") {
            raw = true;
        } else if (arg == "--watch") {
            watch = true;
        } else if (arg == "--interval-ms") {
            if (!intValue(n))
                return usage(argv[0]);
            interval_ms = std::max(int64_t{50}, n);
        } else if (arg == "--request") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            raw_request = v;
        } else if (arg == "--preset") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            design.set("preset", std::string(v));
        } else if (arg == "--line-words") {
            if (!intValue(n))
                return usage(argv[0]);
            design.set("lineWords", n);
        } else if (arg == "--max-states") {
            if (!intValue(n))
                return usage(argv[0]);
            design.set("maxStates", n);
        } else if (arg == "--enum-threads") {
            if (!intValue(n))
                return usage(argv[0]);
            design.set("enumThreads", n);
        } else if (arg == "--compiled-step") {
            design.set("compiledStep", true);
        } else if (arg == "--memory-budget-mb") {
            if (!intValue(n))
                return usage(argv[0]);
            design.set("memoryBudgetBytes", n * (int64_t{1} << 20));
        } else if (arg == "--memory-budget-kb") {
            if (!intValue(n))
                return usage(argv[0]);
            design.set("memoryBudgetBytes", n * (int64_t{1} << 10));
        } else if (arg == "--enum-processes") {
            if (!intValue(n))
                return usage(argv[0]);
            design.set("enumProcesses", n);
        } else if (arg == "--spill-dir") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            design.set("spillDir", std::string(v));
        } else if (arg == "--vector-seed") {
            if (!intValue(n))
                return usage(argv[0]);
            design.set("vectorSeed", n);
        } else if (arg == "--bugs") {
            const char *v = value();
            if (!v)
                return usage(argv[0]);
            std::string list = v;
            size_t pos = 0;
            while (pos <= list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                if (comma > pos)
                    bugs.push(
                        Value(list.substr(pos, comma - pos)));
                pos = comma + 1;
            }
        } else if (arg == "--threads") {
            if (!intValue(n))
                return usage(argv[0]);
            request.set("threads", n);
        } else if (arg == "--stride") {
            if (!intValue(n))
                return usage(argv[0]);
            request.set("stride", n);
        } else if (arg == "--budget") {
            if (!intValue(n))
                return usage(argv[0]);
            request.set("budget", n);
        } else if (arg == "--rounds") {
            if (!intValue(n))
                return usage(argv[0]);
            request.set("rounds", n);
        } else if (arg == "--round-instructions") {
            if (!intValue(n))
                return usage(argv[0]);
            request.set("roundInstructions", n);
        } else if (arg == "--seed") {
            if (!intValue(n))
                return usage(argv[0]);
            request.set("seed", n);
        } else if (arg == "--job") {
            if (!intValue(n))
                return usage(argv[0]);
            request.set("job", n);
        } else if (arg == "--help") {
            help(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else if (verb.empty()) {
            verb = arg;
        } else {
            return usage(argv[0]);
        }
    }
    if (verb.empty() || (socket_path.empty() && tcp_port < 0))
        return usage(argv[0]);

    if (!raw_request.empty()) {
        auto parsed = archval::json::parse(raw_request);
        if (!parsed.ok()) {
            std::fprintf(stderr, "archval_client: --request: %s\n",
                         parsed.errorMessage().c_str());
            return 1;
        }
        request = parsed.take();
    } else {
        if (!design.members().empty())
            request.set("design", std::move(design));
        if (!bugs.items().empty())
            request.set("bugs", std::move(bugs));
    }
    request.set("verb", verb);

    int fd = socket_path.empty() ? connectTcp(tcp_port)
                                 : connectUnix(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "archval_client: cannot connect\n");
        return 1;
    }
    const std::string wire = archval::service::encodeFrame(request);
    if (!archval::service::sendAll(fd, wire.data(), wire.size())) {
        std::fprintf(stderr, "archval_client: send failed\n");
        ::close(fd);
        return 1;
    }

    static const char *const kJobVerbs[] = {
        "enumerate", "tour", "replay", "fuzz", "bughunt"};
    bool is_job = false;
    for (const char *v : kJobVerbs)
        is_job = is_job || verb == v;

    FrameReader reader;
    Value event;
    int exit_code = 1;
    if (verb == "stats") {
        // One snapshot, or a live dashboard: keep the connection and
        // re-request a fresh frame every interval until interrupted
        // or the daemon goes away.
        while (nextEvent(fd, reader, event)) {
            if (event.get("type").asString() == "error") {
                printEvent(event, raw);
                exit_code = 3;
                break;
            }
            if (raw)
                printEvent(event, true);
            else
                printStatsDashboard(event, watch);
            exit_code = 0;
            if (!watch)
                break;
            ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
            if (!archval::service::sendAll(fd, wire.data(),
                                           wire.size())) {
                std::fprintf(stderr,
                             "archval_client: daemon went away\n");
                exit_code = 1;
                break;
            }
        }
    } else if (!is_job) {
        // Control verbs: one reply frame.
        if (nextEvent(fd, reader, event)) {
            printEvent(event, raw);
            exit_code =
                event.get("type").asString() == "error" ? 3 : 0;
        }
    } else {
        long long job_id = -1;
        while (nextEvent(fd, reader, event)) {
            printEvent(event, raw);
            const std::string &type = event.get("type").asString();
            if (type == "accepted") {
                job_id = event.get("job").asInt(-1);
                continue;
            }
            if (job_id >= 0 &&
                event.get("job").asInt(-1) != job_id)
                continue; // another client's chatter (not expected)
            if (type == "result") {
                exit_code = event.get("verdict").asString() ==
                                    "detected"
                                ? 2
                                : 0;
                break;
            }
            if (type == "error") {
                exit_code = 3;
                break;
            }
            if (type == "cancelled") {
                exit_code = 4;
                break;
            }
        }
    }
    ::close(fd);
    return exit_code;
}

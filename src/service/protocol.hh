/**
 * @file
 * Wire protocol of the archvald validation service.
 *
 * Every message — request or event — is one *frame*: a 4-byte
 * little-endian payload length followed by that many bytes of UTF-8
 * JSON. Length-prefix framing keeps the stream self-synchronizing
 * for well-behaved peers while making damage detectable: a length of
 * zero or one exceeding kMaxFrameBytes fails the connection rather
 * than letting a corrupted prefix commit the reader to a gigabyte of
 * garbage. Payload validity is the next layer's job (json::parse —
 * a frame that is not valid JSON is a protocol error too).
 *
 * Requests are JSON objects with a `verb`:
 *
 *   job verbs      enumerate | tour | replay | fuzz | bughunt
 *   control verbs  status | cancel | list | ping | shutdown
 *
 * Job requests carry a `design` object (see service::DesignSpec) and
 * job parameters (`bugs`, `threads`, `budget`, ...). The daemon
 * answers a job request with an `accepted` event carrying the
 * assigned job id, then streams `progress`, `metrics` and finally
 * exactly one of `result` / `error` / `cancelled` for that id —
 * events of concurrent jobs interleave on the connection, matched up
 * by their `job` field. Control verbs get a single reply frame.
 */

#ifndef ARCHVAL_SERVICE_PROTOCOL_HH
#define ARCHVAL_SERVICE_PROTOCOL_HH

#include <sys/types.h>

#include <cstdint>
#include <string>

#include "support/json.hh"

namespace archval::service
{

/** Hard cap on one frame's payload bytes (16 MiB). */
constexpr size_t kMaxFrameBytes = 16u << 20;

/**
 * @name EINTR-safe socket transfer
 * Both daemon and client move frames with these, so the signal
 * semantics cannot drift between the two ends: an interrupted
 * syscall is retried, and only a real transport failure (or, for
 * recvRetry, an orderly shutdown) surfaces to the caller. A naked
 * `::send`/`::recv` whose -1/EINTR return is treated as a dead peer
 * silently drops every remaining frame on that connection — the
 * exact bug these helpers exist to prevent.
 * @{
 */

/**
 * Write all @p size bytes of @p data to @p fd (MSG_NOSIGNAL),
 * retrying interrupted and short sends. @return false only on a real
 * transport error (EPIPE, ECONNRESET, ...), never for EINTR.
 */
bool sendAll(int fd, const void *data, size_t size);

/**
 * One receive of up to @p size bytes into @p buf, retrying EINTR.
 * @return bytes received, 0 on orderly peer shutdown, or -1 on a
 * real transport error.
 */
ssize_t recvRetry(int fd, void *buf, size_t size);

/** @} */

/**
 * Frame @p payload for the wire: 4-byte little-endian length prefix
 * plus the payload bytes. @throws FatalError when the payload
 * exceeds kMaxFrameBytes (the caller built an unsendable message).
 */
std::string encodeFrame(const std::string &payload);

/** Convenience: serialize @p message and frame it. */
std::string encodeFrame(const json::Value &message);

/**
 * Incremental frame decoder for one connection. Feed whatever the
 * socket produced, then drain complete frames:
 *
 *   reader.feed(buf, n);
 *   std::string payload;
 *   while (reader.next(payload) == FrameReader::Status::Ready)
 *       handle(payload);
 *   if (reader.failed()) drop_connection(reader.error());
 *
 * A protocol violation (oversized or zero-length frame) is sticky:
 * the reader stays failed and the connection must be dropped — after
 * a bad length prefix there is no way to find the next frame
 * boundary. Truncated input is not an error, just NeedMore.
 */
class FrameReader
{
  public:
    enum class Status
    {
        NeedMore, ///< no complete frame buffered yet
        Ready,    ///< one frame extracted into the out-param
        Error,    ///< protocol violation; connection unusable
    };

    /** Append @p size raw bytes from the transport. */
    void feed(const void *data, size_t size);

    /** Extract the next complete frame's payload into @p payload. */
    Status next(std::string &payload);

    bool failed() const { return failed_; }
    const std::string &error() const { return error_; }

    /** Bytes buffered but not yet consumed (tests/observability). */
    size_t buffered() const { return buffer_.size() - consumed_; }

  private:
    std::string buffer_;
    size_t consumed_ = 0; ///< prefix of buffer_ already extracted
    bool failed_ = false;
    std::string error_;
};

} // namespace archval::service

#endif // ARCHVAL_SERVICE_PROTOCOL_HH

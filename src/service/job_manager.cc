#include "job_manager.hh"

#include <algorithm>

#include "fuzz/campaign.hh"
#include "harness/bug_hunt.hh"
#include "harness/replay_engine.hh"
#include "support/flight_recorder.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"

namespace archval::service
{

namespace
{

json::Value
makeEvent(const char *type, uint64_t job)
{
    json::Value event = json::Value::object();
    event.set("type", type);
    event.set("job", static_cast<int64_t>(job));
    return event;
}

/** Per-verb latency instrument, e.g.
 *  `service.job_run_seconds{verb=replay}`. The `{verb=...}` suffix
 *  is the registry's label convention: the Prometheus endpoint
 *  splits it into proper labels, everything else treats it as part
 *  of the name. */
telemetry::Histogram &
verbHistogram(const char *base, const std::string &verb)
{
    return telemetry::histogram(
        formatString("%s{verb=%s}", base, verb.c_str()));
}

/** Current registry snapshot as a JSON value (metrics events). */
json::Value
metricsValue()
{
    Result<json::Value> parsed = json::parse(
        telemetry::metricsJson(telemetry::snapshotMetrics()));
    return parsed.ok() ? parsed.take() : json::Value::object();
}

/** Summarize one replayed block as a JSON array of play records —
 *  the exact per-trace content a batch entry point would report, so
 *  clients (and the determinism tests) can compare byte-for-byte. */
json::Value
playsValue(const std::vector<harness::PlayResult> &plays, size_t base,
           size_t count)
{
    json::Value out = json::Value::array();
    for (size_t t = 0; t < count; ++t) {
        const harness::PlayResult &play = plays[base + t];
        json::Value rec = json::Value::object();
        rec.set("trace", static_cast<int64_t>(t));
        rec.set("diverged", play.diverged);
        rec.set("cycles", static_cast<int64_t>(play.cycles));
        rec.set("instructions",
                static_cast<int64_t>(play.instructions));
        if (play.skipped)
            rec.set("skipped", true);
        if (play.diverged)
            rec.set("diff", play.diff);
        out.push(std::move(rec));
    }
    return out;
}

} // namespace

std::string
parseBugs(const json::Value &bugs, rtl::BugSet &out)
{
    out.reset();
    if (bugs.isNull())
        return {};
    if (!bugs.isArray())
        return "'bugs' must be an array of names or indices";
    for (const json::Value &item : bugs.items()) {
        if (item.isInt()) {
            int64_t index = item.asInt();
            if (index < 0 ||
                index >= static_cast<int64_t>(rtl::numBugs))
                return formatString("bug index %lld out of range",
                                    static_cast<long long>(index));
            out.set(static_cast<size_t>(index));
            continue;
        }
        if (item.isString()) {
            bool found = false;
            for (size_t i = 0; i < rtl::numBugs; ++i) {
                if (item.asString() ==
                    rtl::bugName(static_cast<rtl::BugId>(i))) {
                    out.set(i);
                    found = true;
                    break;
                }
            }
            if (!found)
                return "unknown bug name '" + item.asString() + "'";
            continue;
        }
        return "'bugs' entries must be names or indices";
    }
    return {};
}

namespace
{

/**
 * Strict integer job field: absent keeps the default, a present
 * field must be a JSON integer — a double or string answers the
 * request with a `bad request` error instead of silently running
 * with the default value (the same posture as DesignSpec::fromJson).
 * The parsed value is clamped to at least @p min_value.
 */
bool
readJobCount(const json::Value &message, const char *field,
             int64_t min_value, int64_t &out, std::string &error)
{
    if (!message.has(field))
        return true;
    const json::Value &value = message.get(field);
    if (!value.isInt()) {
        error = formatString(
            "bad request: field '%s' must be an integer", field);
        return false;
    }
    out = std::max<int64_t>(min_value, value.asInt());
    return true;
}

} // namespace

Result<JobRequest>
JobRequest::fromJson(const json::Value &message)
{
    JobRequest request;
    request.verb = message.get("verb").asString();
    static const char *const kVerbs[] = {"enumerate", "tour",
                                         "replay", "fuzz", "bughunt"};
    if (std::find(std::begin(kVerbs), std::end(kVerbs),
                  request.verb) == std::end(kVerbs)) {
        return Result<JobRequest>::error("unknown job verb '" +
                                         request.verb + "'");
    }
    Result<DesignSpec> design =
        DesignSpec::fromJson(message.get("design"));
    if (!design.ok())
        return Result<JobRequest>::error(design.errorMessage());
    request.design = design.take();
    std::string bug_error = parseBugs(message.get("bugs"),
                                      request.bugs);
    if (!bug_error.empty())
        return Result<JobRequest>::error(bug_error);
    std::string error;
    int64_t threads = request.threads;
    int64_t stride = static_cast<int64_t>(request.checkpointStride);
    int64_t budget = static_cast<int64_t>(request.randomBudget);
    int64_t round_instructions =
        static_cast<int64_t>(request.roundInstructions);
    int64_t rounds = request.maxRounds;
    int64_t seed = static_cast<int64_t>(request.seed);
    if (!readJobCount(message, "threads", 1, threads, error) ||
        !readJobCount(message, "stride", 0, stride, error) ||
        !readJobCount(message, "budget", 0, budget, error) ||
        !readJobCount(message, "roundInstructions", 1,
                      round_instructions, error) ||
        !readJobCount(message, "rounds", 1, rounds, error) ||
        !readJobCount(message, "seed", 0, seed, error)) {
        return Result<JobRequest>::error(error);
    }
    request.threads = static_cast<unsigned>(threads);
    request.checkpointStride = static_cast<size_t>(stride);
    request.randomBudget = static_cast<uint64_t>(budget);
    request.roundInstructions =
        static_cast<uint64_t>(round_instructions);
    request.maxRounds = static_cast<unsigned>(rounds);
    request.seed = static_cast<uint64_t>(seed);
    return request;
}

JobManager::JobManager(SessionCache &sessions, unsigned workers,
                       size_t queue_bound)
    : sessions_(sessions),
      queueBound_(queue_bound > 0 ? queue_bound : kDefaultQueueBound)
{
    {
        // Register the queue gauges at zero so an idle daemon's
        // first scrape already carries every family.
        std::lock_guard<std::mutex> lock(mutex_);
        updateQueueGaugesLocked();
    }
    workers_.reserve(std::max(1u, workers));
    for (unsigned w = 0; w < std::max(1u, workers); ++w)
        workers_.emplace_back([this] { workerLoop(); });
}

JobManager::~JobManager()
{
    shutdown();
}

uint64_t
JobManager::submit(JobRequest request, EventSink sink,
                   uint64_t client)
{
    auto job = std::make_shared<Job>();
    job->client = client;
    job->request = std::move(request);
    job->sink = std::move(sink);
    job->submitNs = telemetry::nowNs();
    bool shutting_down = false;
    bool busy = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job->id = nextId_++;
        jobs_[job->id] = job;
        if (stopping_) {
            job->state = "cancelled";
            job->detail = "daemon shutting down";
            shutting_down = true;
        } else if (queued_ >= queueBound_) {
            // Admission control: past the bound the client gets an
            // immediate, explicit busy frame instead of an unbounded
            // queue that one greedy connection can fill for everyone.
            job->state = "rejected";
            job->detail = formatString(
                "busy: job queue is full (%zu queued, bound %zu)",
                queued_, queueBound_);
            busy = true;
        } else {
            std::deque<std::shared_ptr<Job>> &q = queues_[client];
            if (q.empty())
                rotation_.push_back(client);
            q.push_back(job);
            ++queued_;
            updateQueueGaugesLocked();
        }
    }
    if (shutting_down) {
        json::Value event = makeEvent("cancelled", job->id);
        event.set("reason", "daemon shutting down");
        emit(*job, event);
    } else if (busy) {
        json::Value event = makeEvent("error", job->id);
        event.set("busy", true);
        event.set("message", job->detail);
        emit(*job, event);
        telemetry::counter("service.jobs_rejected_busy").add(1);
        flight::recordEvent(flight::EventKind::JobRejected, job->id,
                            client, job->request.verb);
    } else {
        flight::recordEvent(flight::EventKind::JobAccepted, job->id,
                            client, job->request.verb);
        cv_.notify_one();
    }
    return job->id;
}

bool
JobManager::unqueueLocked(const std::shared_ptr<Job> &job)
{
    auto qit = queues_.find(job->client);
    if (qit == queues_.end())
        return false;
    std::deque<std::shared_ptr<Job>> &q = qit->second;
    auto it = std::find(q.begin(), q.end(), job);
    if (it == q.end())
        return false;
    q.erase(it);
    --queued_;
    if (q.empty()) {
        queues_.erase(qit);
        rotation_.erase(std::find(rotation_.begin(), rotation_.end(),
                                  job->client));
    }
    updateQueueGaugesLocked();
    return true;
}

void
JobManager::updateQueueGaugesLocked()
{
    telemetry::gauge("service.queue_depth")
        .set(static_cast<int64_t>(queued_));
    telemetry::gauge("service.queue_clients")
        .set(static_cast<int64_t>(queues_.size()));
    size_t deepest = 0;
    for (const auto &[client, q] : queues_)
        deepest = std::max(deepest, q.size());
    telemetry::gauge("service.client_queue_depth")
        .set(static_cast<int64_t>(deepest));
}

bool
JobManager::cancel(uint64_t id)
{
    std::shared_ptr<Job> job;
    bool was_queued = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = jobs_.find(id);
        if (it == jobs_.end())
            return false;
        job = it->second;
        if (job->state != "queued" && job->state != "running")
            return false;
        job->cancel.store(true, std::memory_order_relaxed);
        if (job->state == "queued") {
            was_queued = true;
            job->state = "cancelled";
            job->detail = "cancelled before start";
            unqueueLocked(job);
        }
    }
    if (was_queued) {
        emit(*job, makeEvent("cancelled", id));
        flight::recordEvent(flight::EventKind::JobCancelled, id, 0,
                            "cancelled before start");
    }
    telemetry::counter("service.jobs_cancel_requests").add(1);
    return true;
}

std::optional<JobInfo>
JobManager::status(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    const Job &job = *it->second;
    return JobInfo{job.id, job.request.verb, job.state, job.detail};
}

std::vector<JobInfo>
JobManager::list() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<JobInfo> out;
    out.reserve(jobs_.size());
    for (const auto &[id, job] : jobs_)
        out.push_back(
            JobInfo{job->id, job->request.verb, job->state,
                    job->detail});
    return out;
}

json::Value
JobManager::overviewJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    json::Value out = json::Value::object();
    out.set("queued", static_cast<int64_t>(queued_));
    out.set("bound", static_cast<int64_t>(queueBound_));
    out.set("clients", static_cast<int64_t>(queues_.size()));
    json::Value per_client = json::Value::array();
    for (const auto &[client, q] : queues_) {
        json::Value rec = json::Value::object();
        rec.set("client", static_cast<int64_t>(client));
        rec.set("depth", static_cast<int64_t>(q.size()));
        per_client.push(std::move(rec));
    }
    out.set("perClient", std::move(per_client));
    std::map<std::string, int64_t> by_state;
    for (const auto &[id, job] : jobs_)
        ++by_state[job->state];
    json::Value states = json::Value::object();
    for (const auto &[state, count] : by_state)
        states.set(state, count);
    out.set("states", std::move(states));
    return out;
}

std::string
JobManager::activeJobsJson() const
{
    json::Value out = json::Value::array();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[id, job] : jobs_) {
            if (job->state != "queued" && job->state != "running")
                continue;
            json::Value rec = json::Value::object();
            rec.set("job", static_cast<int64_t>(job->id));
            rec.set("client", static_cast<int64_t>(job->client));
            rec.set("verb", job->request.verb);
            rec.set("state", job->state);
            out.push(std::move(rec));
        }
    }
    return out.serialize();
}

void
JobManager::shutdown()
{
    std::vector<std::shared_ptr<Job>> dropped;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ && workers_.empty())
            return;
        stopping_ = true;
        for (auto &[client, q] : queues_) {
            for (auto &job : q) {
                job->state = "cancelled";
                job->detail = "daemon shutting down";
                dropped.push_back(job);
            }
        }
        queues_.clear();
        rotation_.clear();
        queued_ = 0;
        updateQueueGaugesLocked();
        // Running jobs: flip their flags so they wind down promptly.
        for (auto &[id, job] : jobs_) {
            if (job->state == "running")
                job->cancel.store(true, std::memory_order_relaxed);
        }
    }
    cv_.notify_all();
    for (auto &job : dropped)
        emit(*job, makeEvent("cancelled", job->id));
    for (std::thread &t : workers_)
        t.join();
    workers_.clear();
}

void
JobManager::workerLoop()
{
    while (true) {
        std::shared_ptr<Job> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [&] { return stopping_ || queued_ > 0; });
            if (queued_ == 0) {
                if (stopping_)
                    return;
                continue;
            }
            // Round-robin across clients: take the head client's
            // oldest job, then move that client to the back of the
            // rotation, so B's single job runs after one of A's
            // backlog, not after all of it.
            const uint64_t client = rotation_.front();
            rotation_.pop_front();
            std::deque<std::shared_ptr<Job>> &q = queues_[client];
            job = q.front();
            q.pop_front();
            --queued_;
            if (q.empty())
                queues_.erase(client);
            else
                rotation_.push_back(client);
            job->state = "running";
            job->runStartNs = telemetry::nowNs();
            updateQueueGaugesLocked();
        }
        // Split latency accounting: time spent waiting for a worker
        // vs. time actually executing, per verb.
        verbHistogram("service.job_queue_wait_seconds",
                      job->request.verb)
            .record(double(job->runStartNs - job->submitNs) / 1e9);
        execute(*job);
        verbHistogram("service.job_run_seconds", job->request.verb)
            .record(double(telemetry::nowNs() - job->runStartNs) /
                    1e9);
    }
}

void
JobManager::emit(Job &job, const json::Value &event)
{
    if (!job.sink)
        return;
    try {
        job.sink(event);
    } catch (...) {
        // A sink failure (client gone) must never unwind a worker.
    }
}

void
JobManager::setState(Job &job, const std::string &state,
                     const std::string &detail)
{
    std::lock_guard<std::mutex> lock(mutex_);
    job.state = state;
    job.detail = detail;
}

void
JobManager::execute(Job &job)
{
    const JobRequest &request = job.request;
    // Every span this worker thread (and any engine worker threads
    // re-installing the scope) records while the job runs carries
    // the job id, so traces filter per job.
    telemetry::JobScope job_scope(job.id);
    telemetry::ScopedSpan job_span("service.job", "id", job.id);
    telemetry::counter("service.jobs_started").add(1);
    flight::recordEvent(flight::EventKind::JobStarted, job.id,
                        job.client, request.verb);

    json::Value started = makeEvent("started", job.id);
    started.set("verb", request.verb);
    emit(job, started);

    auto cancelled = [&] {
        return job.cancel.load(std::memory_order_relaxed);
    };
    auto finish_cancelled = [&] {
        setState(job, "cancelled", "cancelled while running");
        emit(job, makeEvent("cancelled", job.id));
        telemetry::counter("service.jobs_cancelled").add(1);
        flight::recordEvent(flight::EventKind::JobCancelled, job.id,
                            0, "cancelled while running");
    };
    auto finish_error = [&](const std::string &message) {
        setState(job, "failed", message);
        json::Value event = makeEvent("error", job.id);
        event.set("message", message);
        emit(job, event);
        telemetry::counter("service.jobs_failed").add(1);
        flight::recordEvent(flight::EventKind::JobFailed, job.id, 0,
                            message);
    };
    auto progress = [&](const char *phase, json::Value detail) {
        json::Value event = makeEvent("progress", job.id);
        event.set("phase", phase);
        event.set("detail", std::move(detail));
        emit(job, event);
        flight::recordEvent(flight::EventKind::JobProgress, job.id,
                            0, phase);
    };

    try {
        std::shared_ptr<Session> session =
            sessions_.acquire(request.design);
        progress("session", json::Value(session->fingerprint()));

        const Session::Stage stage =
            request.verb == "enumerate" ? Session::Stage::Graph
            : request.verb == "tour" || request.verb == "fuzz"
                ? Session::Stage::Tours
                : Session::Stage::Vectors;
        std::string build_error = session->ensure(stage, &job.cancel);
        if (cancelled())
            return finish_cancelled();
        if (!build_error.empty())
            return finish_error(build_error);

        json::Value result = makeEvent("result", job.id);
        result.set("verb", request.verb);

        if (request.verb == "enumerate") {
            const murphi::EnumStats &stats = session->enumStats();
            result.set("states",
                       static_cast<int64_t>(stats.numStates));
            result.set("edges", static_cast<int64_t>(stats.numEdges));
            result.set("bitsPerState",
                       static_cast<int64_t>(stats.bitsPerState));
            result.set("levels",
                       static_cast<int64_t>(stats.levels.size()));
            // Structural graph hash: lets clients verify byte-equal
            // graphs across step kernels and worker counts.
            result.set("graphFingerprint",
                       formatString("%016llx",
                                    static_cast<unsigned long long>(
                                        graph::fingerprint(
                                            session->graph()))));
            result.set("compiledFallback", stats.compiledFallback);
            // Out-of-core telemetry: all zero for a fully in-memory
            // run, so clients can assert both "it spilled" and "it
            // never fell back" from the result frame alone.
            result.set("spillBytes",
                       static_cast<int64_t>(stats.spillBytesWritten));
            result.set("pageIns",
                       static_cast<int64_t>(stats.pageIns));
            result.set("pageOuts",
                       static_cast<int64_t>(stats.pageOuts));
            result.set("residencyHighWater",
                       static_cast<int64_t>(
                           stats.residencyHighWaterBytes));
            result.set("spillFallbacks",
                       static_cast<int64_t>(stats.spillFallbacks));
        } else if (request.verb == "tour") {
            result.set("tours", static_cast<int64_t>(
                                    session->tours().size()));
            result.set("states", static_cast<int64_t>(
                                     session->enumStats().numStates));
        } else if (request.verb == "replay") {
            progress("replay",
                     json::Value(static_cast<int64_t>(
                         session->vectors().size())));
            harness::ReplayOptions options;
            options.numThreads = request.threads;
            options.checkpointStride = request.checkpointStride;
            options.warmCache = session->warmCache();
            options.cancelFlag = &job.cancel;
            harness::ReplayEngine engine(session->config(), options);
            // A bug-free donor block leads every batch: it feeds the
            // session warm cache on the first run and collapses to
            // warm copies on every repeat. The client-visible block
            // is the last one.
            std::vector<rtl::BugSet> bug_sets{rtl::BugSet{}};
            if (request.bugs.any())
                bug_sets.push_back(request.bugs);
            std::vector<harness::PlayResult> plays =
                engine.playAll(session->vectors(), bug_sets);
            if (cancelled())
                return finish_cancelled();
            const size_t nt = session->vectors().size();
            const size_t base = (bug_sets.size() - 1) * nt;
            uint64_t diverged = 0;
            std::string first_diff;
            for (size_t t = 0; t < nt; ++t) {
                if (plays[base + t].diverged) {
                    if (diverged == 0)
                        first_diff = plays[base + t].diff;
                    ++diverged;
                }
            }
            const harness::ReplayStats &stats = engine.stats();
            result.set("traces", static_cast<int64_t>(nt));
            result.set("diverged", static_cast<int64_t>(diverged));
            if (diverged > 0)
                result.set("firstDivergence", first_diff);
            result.set("batchCycles",
                       static_cast<int64_t>(stats.batchCycles));
            result.set("simulatedCycles",
                       static_cast<int64_t>(stats.simulatedCycles));
            result.set("cyclesAvoided",
                       static_cast<int64_t>(stats.cyclesAvoided));
            json::Value warm = json::Value::object();
            warm.set("lookups",
                     static_cast<int64_t>(stats.warmLookups));
            warm.set("hits", static_cast<int64_t>(stats.warmHits));
            warm.set("copies",
                     static_cast<int64_t>(stats.warmCopies));
            warm.set("chainHits",
                     static_cast<int64_t>(stats.warmChainHits));
            warm.set("resumeCycles",
                     static_cast<int64_t>(stats.warmResumeCycles));
            warm.set("inserts",
                     static_cast<int64_t>(stats.warmInserts));
            result.set("warm", std::move(warm));
            result.set("plays", playsValue(plays, base, nt));
        } else if (request.verb == "fuzz") {
            fuzz::CampaignOptions options;
            options.workers = request.threads;
            options.roundInstructions = request.roundInstructions;
            options.maxRounds = request.maxRounds;
            options.seed = request.seed;
            options.cancelFlag = &job.cancel;
            fuzz::CampaignRunner runner(session->config(),
                                        session->model(),
                                        session->graph(), options);
            fuzz::CampaignResult campaign =
                runner.run(request.bugs, session->tours());
            if (cancelled() && !campaign.detected)
                return finish_cancelled();
            result.set("detected", campaign.detected);
            result.set("cancelled", campaign.cancelled);
            result.set("instructions", static_cast<int64_t>(
                                           campaign.instructions));
            result.set("cycles",
                       static_cast<int64_t>(campaign.cycles));
            result.set("iterations",
                       static_cast<int64_t>(campaign.iterations));
            result.set("coverage", campaign.coverageFraction);
            if (campaign.detected)
                result.set("detail", campaign.detail);
        } else if (request.verb == "bughunt") {
            harness::ReplayOptions options;
            options.numThreads = request.threads;
            options.checkpointStride = request.checkpointStride;
            options.cancelFlag = &job.cancel;
            harness::BugHunt hunt(session->config(), session->model(),
                                  session->graph(),
                                  session->vectors(), options);
            hunt.setWarmCache(session->warmCache());
            json::Value hunts = json::Value::array();
            bool any_detected = false;
            for (size_t i = 0; i < rtl::numBugs; ++i) {
                if (!request.bugs.test(i))
                    continue;
                if (cancelled())
                    return finish_cancelled();
                harness::HuntResult hr = hunt.hunt(
                    static_cast<rtl::BugId>(i),
                    request.randomBudget, request.seed);
                json::Value rec = json::Value::object();
                rec.set("bug", rtl::bugName(hr.bug));
                auto arm = [&](const char *name,
                               const harness::Detection &d) {
                    json::Value a = json::Value::object();
                    a.set("detected", d.detected);
                    a.set("instructions",
                          static_cast<int64_t>(d.instructions));
                    if (d.detected)
                        a.set("detail", d.detail);
                    rec.set(name, std::move(a));
                };
                arm("tour", hr.tour);
                arm("random", hr.random);
                arm("directed", hr.directed);
                any_detected = any_detected || hr.tour.detected ||
                               hr.random.detected ||
                               hr.directed.detected;
                hunts.push(std::move(rec));
            }
            result.set("detected", any_detected);
            result.set("hunts", std::move(hunts));
        }

        if (cancelled())
            return finish_cancelled();

        json::Value metrics = makeEvent("metrics", job.id);
        metrics.set("metrics", metricsValue());
        emit(job, metrics);

        std::string verdict = "ok";
        if (result.get("diverged").asInt(0) > 0 ||
            result.get("detected").asBool(false))
            verdict = "detected";
        result.set("verdict", verdict);
        setState(job, "done", verdict);
        // Count before emitting: a client that has seen the result
        // frame must find the job in every observability surface.
        telemetry::counter("service.jobs_done").add(1);
        flight::recordEvent(flight::EventKind::JobDone, job.id, 0,
                            verdict);
        emit(job, result);
        // Park the session's products (graph, tours, warm entries)
        // on disk so a daemon restart replays warm. No-op when
        // persistence is off or nothing changed since the last save.
        session->persist();
    } catch (const FatalError &err) {
        finish_error(err.what());
    } catch (const std::exception &err) {
        finish_error(std::string("internal error: ") + err.what());
    }
}

} // namespace archval::service

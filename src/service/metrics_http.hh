/**
 * @file
 * Minimal Prometheus scrape endpoint for archvald.
 *
 * One loopback TCP listener serving `GET /metrics` with the text
 * exposition rendered by a caller-supplied callback. Deliberately
 * not a web server: requests are handled serially on one thread,
 * the request parser accepts exactly the scrape shape Prometheus
 * sends (a GET line plus headers, read until the blank line with a
 * receive timeout and an 8 KiB cap), and everything else answers an
 * HTTP error without touching daemon state — a garbage request can
 * cost at most one 400 response, never a crash and never a stall
 * (the socket timeout bounds a slow-lorising peer).
 */

#ifndef ARCHVAL_SERVICE_METRICS_HTTP_HH
#define ARCHVAL_SERVICE_METRICS_HTTP_HH

#include <functional>
#include <string>
#include <thread>

namespace archval::service
{

class MetricsHttpServer
{
  public:
    /** Produces the `/metrics` response body (the Prometheus text
     *  exposition). Called once per scrape from the server thread. */
    using Renderer = std::function<std::string()>;

    MetricsHttpServer() = default;
    ~MetricsHttpServer() { stop(); }

    MetricsHttpServer(const MetricsHttpServer &) = delete;
    MetricsHttpServer &operator=(const MetricsHttpServer &) = delete;

    /** Bind 127.0.0.1:@p port (0 = ephemeral; read it back with
     *  port()) and start the serve thread. @return an error message,
     *  or empty on success. */
    std::string start(int port, Renderer renderer);

    /** Close the listener and join the serve thread. Idempotent. */
    void stop();

    /** Actual bound port after start(). */
    int port() const { return port_; }

  private:
    void serveLoop();
    void handleConnection(int fd);

    Renderer renderer_;
    int listenFd_ = -1;
    int port_ = -1;
    std::thread thread_;
};

} // namespace archval::service

#endif // ARCHVAL_SERVICE_METRICS_HTTP_HH

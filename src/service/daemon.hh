/**
 * @file
 * The archvald daemon: socket listeners, connection handling and
 * verb dispatch on top of the JobManager.
 *
 * The daemon listens on a Unix-domain socket and/or a loopback TCP
 * port (tests use port 0 and read the bound port back). Each
 * accepted connection gets its own reader thread running the
 * FrameReader loop; job events are written back by JobManager worker
 * threads through a per-connection write lock, so events of
 * concurrent jobs interleave frame-atomically on the wire.
 *
 * A connection is a failure domain: a malformed frame or non-JSON
 * payload fails only that connection (one final `error` frame, then
 * close), and a disconnect cancels the jobs the connection submitted
 * — their sinks go quiet, the daemon itself is untouched.
 *
 * Lifecycle: start() binds the listeners, wait() blocks until a
 * `shutdown` verb or stop() flips the stop flag, then tears
 * everything down in order: stop accepting, drain/cancel jobs,
 * shut down connections, join every thread.
 */

#ifndef ARCHVAL_SERVICE_DAEMON_HH
#define ARCHVAL_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/job_manager.hh"
#include "service/session_cache.hh"

namespace archval::service
{

class Daemon
{
  public:
    struct Options
    {
        /** Unix-domain socket path; empty disables the listener. A
         *  stale socket file at the path is replaced. */
        std::string unixPath;
        /** Loopback TCP port; -1 disables, 0 picks an ephemeral
         *  port (read it back with tcpPort()). */
        int tcpPort = -1;
        unsigned workers = 2;    ///< concurrent job executors
        size_t maxSessions = 4;  ///< session cache capacity
        /** Session persistence directory (see service::SessionStore);
         *  empty keeps sessions memory-only, so a restart rebuilds
         *  everything cold. */
        std::string sessionDir;
        /** On-disk size cap for sessionDir's record files, in bytes
         *  (0 = unlimited). Least-recently-used session files are
         *  evicted after each save; an evicted fingerprint rebuilds
         *  cold on its next job. */
        size_t sessionDirCapBytes = 0;
        /** Admission-control bound on jobs queued (not running)
         *  across all clients; a submit past the bound is answered
         *  with a `busy` error frame (JobManager::kDefaultQueueBound
         *  when 0). */
        size_t queueBound = 0;
        /** Prometheus scrape port (`GET /metrics` on loopback);
         *  -1 disables, 0 picks an ephemeral port (read it back
         *  with metricsPort()). */
        int metricsPort = -1;
        /** Flight-recorder crash-report directory; empty disables
         *  crash dumps (the event ring still records). */
        std::string crashDir;
    };

    explicit Daemon(const Options &options);

    /** Stops and joins if still running. */
    ~Daemon();

    /** Bind + listen + spawn the accept threads. @return an error
     *  message, or empty on success. */
    std::string start();

    /** Block until stop() (e.g. via the `shutdown` verb), then tear
     *  down: cancel jobs, close connections, join all threads. */
    void wait();

    /** Request shutdown; safe from any thread, idempotent. wait()
     *  performs the actual teardown. */
    void stop();

    /** Actual TCP port after start() (for Options::tcpPort == 0). */
    int tcpPort() const { return boundTcpPort_; }

    /** Actual Prometheus port after start() (-1 when disabled). */
    int metricsPort() const;

    SessionCache &sessions() { return sessions_; }
    JobManager &jobs() { return *jobs_; }

    /** The `stats` verb's reply frame (also used by tests): queue
     *  overview, session-cache health, process memory, uptime and
     *  the full metrics registry as canonical JSON. */
    json::Value statsFrame() const;

  private:
    struct Connection;

    void acceptLoop(int listen_fd);
    void serveConnection(std::shared_ptr<Connection> conn);
    void handleMessage(const std::shared_ptr<Connection> &conn,
                       const json::Value &message);
    /** Refresh snapshot-derived gauges (memory, sessions, uptime)
     *  so stats frames and scrapes are never stale. */
    void refreshObservabilityGauges() const;

    Options options_;
    SessionCache sessions_;
    std::unique_ptr<JobManager> jobs_;
    std::unique_ptr<class MetricsHttpServer> metricsServer_;
    uint64_t startNs_ = 0;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    int boundTcpPort_ = -1;
    std::atomic<uint64_t> nextConnId_{1}; ///< JobManager client keys
    std::vector<std::thread> acceptThreads_;

    std::mutex mutex_; ///< guards conns_, connThreads_, stopped_
    std::condition_variable stopCv_;
    std::atomic<bool> stopping_{false};
    bool stopped_ = false; ///< teardown already ran
    std::vector<std::shared_ptr<Connection>> conns_;
    std::vector<std::thread> connThreads_;
};

} // namespace archval::service

#endif // ARCHVAL_SERVICE_DAEMON_HH

/**
 * @file
 * Job queue and executor for the archvald daemon.
 *
 * The JobManager owns a small worker pool. submit() assigns a
 * monotonically increasing job id, enqueues the request and returns
 * immediately; a worker later runs the job and streams its lifecycle
 * through the caller-supplied EventSink:
 *
 *   started -> progress* -> metrics -> result | error | cancelled
 *
 * Exactly one terminal event is emitted per job. Every failure mode
 * of a job — bad request, unknown preset, state explosion, tour
 * coverage failure — is caught and reported as an `error` event;
 * nothing a client sends can take the process down (the library
 * keeps panic() for genuine internal invariants only).
 *
 * Cancellation is cooperative: cancel() flips the job's atomic flag,
 * which is wired into murphi::EnumOptions, harness::ReplayOptions
 * and fuzz::CampaignOptions, so a running job stops at the next
 * source/job/round boundary and reports `cancelled`. A still-queued
 * job is cancelled without ever starting.
 *
 * Jobs resolve their Session through the shared SessionCache, so
 * concurrent jobs with equal design fingerprints share one product
 * chain and one replay warm cache — the second replay of a trace
 * set reuses the first one's bug-free donor runs even across
 * clients.
 */

#ifndef ARCHVAL_SERVICE_JOB_MANAGER_HH
#define ARCHVAL_SERVICE_JOB_MANAGER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "rtl/faults.hh"
#include "service/session_cache.hh"
#include "support/json.hh"
#include "support/status.hh"

namespace archval::service
{

/** Streamed job event consumer (a connection writer, a test). Must
 *  be thread-safe; called from worker threads. */
using EventSink = std::function<void(const json::Value &event)>;

/** One parsed job request. */
struct JobRequest
{
    std::string verb; ///< enumerate | tour | replay | fuzz | bughunt
    DesignSpec design;
    rtl::BugSet bugs;

    unsigned threads = 2;        ///< replay / campaign workers
    size_t checkpointStride = 128; ///< replay warm-chain granularity
    uint64_t randomBudget = 30'000; ///< bughunt random-arm budget
    uint64_t roundInstructions = 10'000; ///< fuzz, per worker/round
    unsigned maxRounds = 4;      ///< fuzz campaign length
    uint64_t seed = 1;           ///< bughunt / fuzz seed

    /** Parse a request message. @return the request or an error
     *  (unknown verb, malformed bug list). */
    static Result<JobRequest> fromJson(const json::Value &message);
};

/** Point-in-time job descriptor (status / list verbs). */
struct JobInfo
{
    uint64_t id = 0;
    std::string verb;
    /** queued | running | done | failed | cancelled | rejected */
    std::string state;
    std::string detail; ///< fingerprint, error, or verdict
};

class JobManager
{
  public:
    /** Default admission bound on queued (not running) jobs. */
    static constexpr size_t kDefaultQueueBound = 64;

    /** @param sessions Shared session store.
     *  @param workers Concurrent job executors.
     *  @param queue_bound Admission bound across all clients; a
     *  submit past it is rejected with a `busy` error frame
     *  (0 picks kDefaultQueueBound). */
    explicit JobManager(SessionCache &sessions, unsigned workers = 2,
                        size_t queue_bound = 0);

    /** Drains and joins (equivalent to shutdown()). */
    ~JobManager();

    /**
     * Enqueue @p request. Emits an immediate `started`-on-dequeue
     * lifecycle into @p sink (see file comment). @return the job id.
     *
     * @p client keys admission fairness: queued jobs drain
     * round-robin across clients (FIFO within one client), so one
     * connection flooding the queue cannot starve the others — and
     * when the whole queue is at the bound, the submit is rejected
     * immediately with an `error` event carrying `"busy": true`
     * (job state "rejected") instead of queueing unboundedly.
     */
    uint64_t submit(JobRequest request, EventSink sink,
                    uint64_t client = 0);

    /** Request cooperative cancellation. @return false for an
     *  unknown id or a job already in a terminal state. */
    bool cancel(uint64_t id);

    /** @return the job's descriptor, if the id was ever assigned. */
    std::optional<JobInfo> status(uint64_t id) const;

    /** @return descriptors of every job, id order. */
    std::vector<JobInfo> list() const;

    /** Admission bound currently in force. */
    size_t queueBound() const { return queueBound_; }

    /** Queue + job-state overview for the `stats` verb: live depth,
     *  bound, per-client depths, and job counts by state. */
    json::Value overviewJson() const;

    /** JSON array of non-terminal (queued/running) jobs, for the
     *  flight recorder's active-job table. Callable from any
     *  thread, including a crash-dump path. */
    std::string activeJobsJson() const;

    /** Stop accepting, cancel queued jobs, join the workers. Safe to
     *  call repeatedly. */
    void shutdown();

  private:
    struct Job
    {
        uint64_t id = 0;
        uint64_t client = 0; ///< fairness key (submitting connection)
        JobRequest request;
        EventSink sink;
        std::atomic<bool> cancel{false};
        std::string state = "queued";
        std::string detail;
        uint64_t submitNs = 0;   ///< queue-wait measurement start
        uint64_t runStartNs = 0; ///< run-time measurement start
    };

    void workerLoop();
    void execute(Job &job);
    void emit(Job &job, const json::Value &event);
    void setState(Job &job, const std::string &state,
                  const std::string &detail);
    /** Remove @p job from its client's queue (mutex_ held).
     *  @return true when it was queued. */
    bool unqueueLocked(const std::shared_ptr<Job> &job);
    /** Refresh the queue gauges (mutex_ held). */
    void updateQueueGaugesLocked();

    SessionCache &sessions_;
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
    uint64_t nextId_ = 1;
    size_t queueBound_;
    size_t queued_ = 0; ///< jobs across all per-client queues
    /** Admission structure: one FIFO per client plus a round-robin
     *  rotation of clients with work, so dequeue order interleaves
     *  clients fairly instead of draining one backlog first. */
    std::map<uint64_t, std::deque<std::shared_ptr<Job>>> queues_;
    std::deque<uint64_t> rotation_; ///< clients with non-empty queues
    std::map<uint64_t, std::shared_ptr<Job>> jobs_;
    std::vector<std::thread> workers_;
};

/** Parse a `bugs` JSON array ("bug1".."bug6" names or 0-based
 *  indices) into a BugSet. @return an error message or empty. */
std::string parseBugs(const json::Value &bugs, rtl::BugSet &out);

} // namespace archval::service

#endif // ARCHVAL_SERVICE_JOB_MANAGER_HH

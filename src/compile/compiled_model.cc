#include "compiled_model.hh"

#include "support/status.hh"

namespace archval::compile
{

CompiledModel::CompiledModel(std::shared_ptr<const FsmSpec> spec)
    : spec_(std::move(spec))
{
    if (!spec_)
        fatal("CompiledModel requires a spec");
    program_ = lower(*spec_);
}

std::string
CompiledModel::name() const
{
    return spec_->name;
}

const std::vector<fsm::StateVarInfo> &
CompiledModel::stateVars() const
{
    return spec_->stateVars;
}

const std::vector<fsm::ChoiceVarInfo> &
CompiledModel::choiceVars() const
{
    return spec_->choiceVars;
}

BitVec
CompiledModel::resetState() const
{
    const fsm::StateLayout &layout = program_->layout;
    BitVec state(layout.totalBits());
    for (size_t i = 0; i < spec_->stateVars.size(); ++i)
        layout.set(state, i, spec_->stateVars[i].resetValue);
    return state;
}

std::optional<fsm::Transition>
CompiledModel::next(const BitVec &state, const fsm::Choice &choice) const
{
    ScalarKernel kernel(program_);
    return kernel.next(state, choice);
}

void
CompiledModel::forEachTransition(
    const BitVec &state,
    const std::function<void(uint64_t, fsm::Transition &&)> &fn) const
{
    ScalarKernel kernel(program_);
    kernel.forEachTransition(state, fn);
}

std::shared_ptr<const FsmSpec>
CompiledModel::compileSpec() const
{
    return spec_;
}

} // namespace archval::compile

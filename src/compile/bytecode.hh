/**
 * @file
 * Flat bytecode form of an FsmSpec and its lowering.
 *
 * A Program is an SSA instruction list over a dense uint64 register
 * file: registers [0, S) hold the source state fields, [S, S+C) the
 * choice values, the next K registers are constants preloaded at
 * build time, and every instruction writes one fresh temp register.
 * There is no pointer chasing and no per-cycle allocation — a kernel
 * step is "overwrite the choice registers, run the instruction list".
 *
 * Each register also carries a static *value-width bound*: a sound
 * upper bound on the number of significant bits any value it can hold
 * may have. The bound drives two things: `Mask` instructions whose
 * operand is already narrow enough are elided at lowering (the mask
 * is a no-op on values below the bound), and the bit-sliced kernel
 * sizes each register's plane set by it so a 1-bit signal costs one
 * plane op, not 64.
 */

#ifndef ARCHVAL_COMPILE_BYTECODE_HH
#define ARCHVAL_COMPILE_BYTECODE_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "compile/fsm_spec.hh"
#include "fsm/model.hh"

namespace archval::compile
{

/** Bytecode operations. Same semantics as the SpecOp of one name. */
enum class BOp : uint8_t
{
    Mask,
    Not,
    BitNot,
    Neg,
    RedXor,
    Add,
    Sub,
    Shl,
    Shr,
    And,
    Or,
    Xor,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    LAnd,
    LOr,
    Mux,
    Halt, ///< sentinel terminating the instruction list
    Count,
};

/** Sentinel register id for "absent" (no instr/legal register). */
constexpr uint16_t kNoReg = std::numeric_limits<uint16_t>::max();

/** One fixed-width instruction: dst = op(a, b, c) masked to width. */
struct Insn
{
    BOp op = BOp::Halt;
    uint8_t width = 64; ///< low bits kept after the op; 64 = no mask
    uint16_t dst = 0;
    uint16_t a = 0;
    uint16_t b = 0;
    uint16_t c = 0;
};

/** Lowered program plus the layout metadata kernels need. */
struct Program
{
    std::string name;
    std::vector<fsm::StateVarInfo> stateVars;
    std::vector<fsm::ChoiceVarInfo> choiceVars;
    fsm::StateLayout layout; ///< over stateVars

    size_t numRegs = 0;
    uint16_t choiceBase = 0; ///< first choice register (state at 0)
    /** Constant registers and their preload values, in register
     *  order starting at choiceBase + numChoiceVars. */
    std::vector<std::pair<uint16_t, uint64_t>> constInit;
    std::vector<Insn> insns; ///< ends with a Halt sentinel

    std::vector<uint16_t> nextRegs; ///< per state var (masked value)
    uint16_t instrReg = kNoReg;
    uint16_t legalReg = kNoReg; ///< transition legal iff != 0

    /** Per-register value-width bound, in [0, 64]. */
    std::vector<uint8_t> regBits;
    /** Per-register constant flag + value (for the sliced kernel's
     *  constant-shift fast path). Index by register id. */
    std::vector<uint8_t> regIsConst;
    std::vector<uint64_t> regConstValue;

    /** Total combinations of the choice variables. */
    uint64_t numCombos = 1;

    /** Approximate encoded size: instructions + constant pool. */
    size_t byteSize() const
    {
        return insns.size() * sizeof(Insn) +
               constInit.size() * sizeof(uint64_t);
    }
};

/**
 * Lower @p spec to bytecode. Deterministic; instruments
 * `compile.lower_micros`, `compile.bytecode_bytes` and
 * `compile.programs` via support/telemetry.
 */
std::shared_ptr<const Program> lower(const FsmSpec &spec);

} // namespace archval::compile

#endif // ARCHVAL_COMPILE_BYTECODE_HH

/**
 * @file
 * Execution kernels over lowered bytecode.
 *
 * ScalarKernel runs one (state, choice) step at a time through a
 * computed-goto threaded interpreter; SlicedKernel packs up to 64
 * independent source states into `uint64_t` bit planes (plane `b`,
 * bit `l` = bit `b` of lane `l`'s value) so one ALU op advances all
 * lanes of a boolean signal at once. Both produce transitions
 * bit-identical to the producing model's interpreted step.
 *
 * Kernels hold mutable per-instance scratch (the register file /
 * plane arena) and are NOT thread-safe; create one per worker. The
 * shared Program is immutable and safely shared across threads.
 */

#ifndef ARCHVAL_COMPILE_KERNEL_HH
#define ARCHVAL_COMPILE_KERNEL_HH

#include <functional>
#include <optional>
#include <vector>

#include "compile/bytecode.hh"

namespace archval::compile
{

/** Single-trace bytecode interpreter. */
class ScalarKernel
{
  public:
    explicit ScalarKernel(std::shared_ptr<const Program> program);

    const Program &program() const { return *prog_; }

    /** One step; nullopt when the choice tuple is illegal. */
    std::optional<fsm::Transition> next(const BitVec &state,
                                        const fsm::Choice &choice);

    /**
     * Enumerate every legal transition out of @p state in ascending
     * packed-code order — the exact callback sequence of
     * fsm::Model::forEachTransition on the producing model.
     */
    void forEachTransition(
        const BitVec &state,
        const std::function<void(uint64_t, fsm::Transition &&)> &fn);

  private:
    void loadState(const BitVec &state);
    void exec();
    bool legal() const;
    fsm::Transition materialize() const;

    std::shared_ptr<const Program> prog_;
    std::vector<uint64_t> regs_;
};

/** 64-lane bit-sliced batch kernel. */
class SlicedKernel
{
  public:
    explicit SlicedKernel(std::shared_ptr<const Program> program);

    const Program &program() const { return *prog_; }

    /**
     * Expand a batch of up to 64 source states through every choice
     * code. Calls @p sink once per legal transition, grouped by
     * source lane in ascending lane order and, within a lane, in
     * ascending packed-code order — per lane, the exact callback
     * sequence of the scalar kernel (and of the interpreted model).
     * Source pointers are only read before the first sink call.
     */
    void expandBatch(
        const BitVec *const *sources, size_t count,
        const std::function<void(size_t, uint64_t, fsm::Transition &&)>
            &sink);

    /** Lane-steps run through the per-lane scalar fallback (variable
     *  shifts are not sliceable). */
    uint64_t scalarFallbackLanes() const { return fallbackLanes_; }

  private:
    uint64_t execPlanes(uint64_t active);
    void scalarFallback(const Insn &insn, uint64_t active);
    uint64_t gather(uint16_t reg, unsigned lane) const;

    std::shared_ptr<const Program> prog_;
    std::vector<uint32_t> planeOff_;
    std::vector<uint64_t> planes_;
    std::vector<std::vector<std::pair<uint64_t, fsm::Transition>>>
        buffers_;
    uint64_t fallbackLanes_ = 0;
};

} // namespace archval::compile

#endif // ARCHVAL_COMPILE_KERNEL_HH

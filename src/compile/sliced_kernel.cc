#include "kernel.hh"

#include <algorithm>

#include "support/status.hh"
#include "support/telemetry.hh"

namespace archval::compile
{

/*
 * Plane representation: register r owns regBits[r] consecutive words
 * in the arena; word p holds bit p of all 64 lanes (bit l of word p =
 * bit p of lane l's value). Bits above a register's value bound are
 * provably zero, so they have no plane at all — reading a missing
 * plane yields the zero word. Only side-effect-free boolean/arith ops
 * are evaluated in sliced form; shifts by a non-constant amount fall
 * back to a per-lane scalar evaluation of that one instruction (see
 * scalarFallback below), preserving bit-exactness.
 */

namespace
{

inline uint64_t
broadcast(uint64_t value, unsigned bit)
{
    return (value >> bit) & 1 ? ~uint64_t(0) : 0;
}

const std::vector<double> &
laneOccupancyBounds()
{
    static const std::vector<double> bounds = {1,  2,  4,  8,
                                               16, 32, 48, 63};
    return bounds;
}

} // namespace

SlicedKernel::SlicedKernel(std::shared_ptr<const Program> program)
    : prog_(std::move(program))
{
    const Program &p = *prog_;
    planeOff_.resize(p.numRegs, 0);
    uint32_t total = 0;
    for (size_t r = 0; r < p.numRegs; ++r) {
        planeOff_[r] = total;
        total += p.regBits[r];
    }
    planes_.assign(total, 0);
    // Constant registers broadcast the same value to every lane and
    // never change: preload their planes once.
    for (const auto &[reg, value] : p.constInit) {
        for (unsigned b = 0; b < p.regBits[reg]; ++b)
            planes_[planeOff_[reg] + b] = broadcast(value, b);
    }
    buffers_.resize(64);
}

uint64_t
SlicedKernel::gather(uint16_t reg, unsigned lane) const
{
    const uint64_t *pl = planes_.data() + planeOff_[reg];
    uint64_t value = 0;
    for (unsigned b = 0; b < prog_->regBits[reg]; ++b)
        value |= ((pl[b] >> lane) & 1) << b;
    return value;
}

void
SlicedKernel::scalarFallback(const Insn &insn, uint64_t active)
{
    const Program &p = *prog_;
    const uint64_t mask = insn.width >= 64
                              ? ~uint64_t(0)
                              : (uint64_t(1) << insn.width) - 1;
    uint64_t *dst = planes_.data() + planeOff_[insn.dst];
    const unsigned wd = p.regBits[insn.dst];
    std::fill(dst, dst + wd, 0);
    for (uint64_t rest = active; rest;) {
        const unsigned lane =
            static_cast<unsigned>(__builtin_ctzll(rest));
        rest &= rest - 1;
        const uint64_t a = gather(insn.a, lane);
        const uint64_t b = gather(insn.b, lane);
        uint64_t v = 0;
        switch (insn.op) {
          case BOp::Shl:
            v = b >= 64 ? 0 : (a << b) & mask;
            break;
          case BOp::Shr:
            v = b >= 64 ? 0 : a >> b;
            break;
          default:
            panic("SlicedKernel: unexpected scalar-fallback op");
        }
        for (unsigned bit = 0; bit < wd; ++bit)
            dst[bit] |= ((v >> bit) & 1) << lane;
        ++fallbackLanes_;
    }
}

/**
 * Run the program over the plane arena for @p active lanes.
 * @return the legality plane (bit l set = lane l's transition legal).
 */
uint64_t
SlicedKernel::execPlanes(uint64_t active)
{
    const Program &p = *prog_;
    const uint8_t *bits = p.regBits.data();
    uint64_t *arena = planes_.data();
    const uint32_t *off = planeOff_.data();

    auto plane = [&](uint16_t reg, unsigned b) -> uint64_t {
        return b < bits[reg] ? arena[off[reg] + b] : 0;
    };
    auto orPlanes = [&](uint16_t reg) -> uint64_t {
        uint64_t v = 0;
        for (unsigned b = 0; b < bits[reg]; ++b)
            v |= arena[off[reg] + b];
        return v;
    };
    // Borrow-out of (x - y): set for lanes where x < y (unsigned).
    auto borrowOut = [&](uint16_t x, uint16_t y) -> uint64_t {
        uint64_t borrow = 0;
        const unsigned w = std::max(bits[x], bits[y]);
        for (unsigned b = 0; b < w; ++b) {
            const uint64_t xb = plane(x, b);
            const uint64_t yb = plane(y, b);
            borrow = (~xb & yb) | (borrow & ~(xb ^ yb));
        }
        return borrow;
    };
    auto eqPlane = [&](uint16_t x, uint16_t y) -> uint64_t {
        uint64_t acc = ~uint64_t(0);
        const unsigned w = std::max(bits[x], bits[y]);
        for (unsigned b = 0; b < w; ++b)
            acc &= ~(plane(x, b) ^ plane(y, b));
        return acc;
    };

    for (const Insn &insn : p.insns) {
        if (insn.op == BOp::Halt)
            break;
        uint64_t *dst = arena + off[insn.dst];
        const unsigned wd = bits[insn.dst];
        switch (insn.op) {
          case BOp::Mask:
            // The destination bound is min(operand bound, width):
            // truncation is plane copying.
            for (unsigned b = 0; b < wd; ++b)
                dst[b] = plane(insn.a, b);
            break;
          case BOp::Not:
            dst[0] = ~orPlanes(insn.a);
            break;
          case BOp::BitNot:
            for (unsigned b = 0; b < wd; ++b)
                dst[b] = ~plane(insn.a, b);
            break;
          case BOp::Neg: {
            // (~a + 1) over wd planes: increment of ~a.
            uint64_t carry = ~uint64_t(0);
            for (unsigned b = 0; b < wd; ++b) {
                const uint64_t x = ~plane(insn.a, b);
                dst[b] = x ^ carry;
                carry &= x;
            }
            break;
          }
          case BOp::RedXor: {
            uint64_t parity = 0;
            for (unsigned b = 0; b < bits[insn.a]; ++b)
                parity ^= plane(insn.a, b);
            dst[0] = parity;
            break;
          }
          case BOp::Add: {
            uint64_t carry = 0;
            for (unsigned b = 0; b < wd; ++b) {
                const uint64_t ab = plane(insn.a, b);
                const uint64_t bb = plane(insn.b, b);
                const uint64_t x = ab ^ bb;
                dst[b] = x ^ carry;
                carry = (ab & bb) | (carry & x);
            }
            break;
          }
          case BOp::Sub: {
            uint64_t borrow = 0;
            for (unsigned b = 0; b < wd; ++b) {
                const uint64_t ab = plane(insn.a, b);
                const uint64_t bb = plane(insn.b, b);
                const uint64_t x = ab ^ bb;
                dst[b] = x ^ borrow;
                borrow = (~ab & bb) | (borrow & ~x);
            }
            break;
          }
          case BOp::Shl:
            if (p.regIsConst[insn.b]) {
                const uint64_t sh = p.regConstValue[insn.b];
                for (unsigned b = 0; b < wd; ++b)
                    dst[b] = b >= sh
                                 ? plane(insn.a,
                                         static_cast<unsigned>(b - sh))
                                 : 0;
            } else {
                scalarFallback(insn, active);
            }
            break;
          case BOp::Shr:
            if (p.regIsConst[insn.b]) {
                const uint64_t sh = p.regConstValue[insn.b];
                for (unsigned b = 0; b < wd; ++b)
                    dst[b] = sh + b < 64
                                 ? plane(insn.a,
                                         static_cast<unsigned>(sh + b))
                                 : 0;
            } else {
                scalarFallback(insn, active);
            }
            break;
          case BOp::And:
            for (unsigned b = 0; b < wd; ++b)
                dst[b] = plane(insn.a, b) & plane(insn.b, b);
            break;
          case BOp::Or:
            for (unsigned b = 0; b < wd; ++b)
                dst[b] = plane(insn.a, b) | plane(insn.b, b);
            break;
          case BOp::Xor:
            for (unsigned b = 0; b < wd; ++b)
                dst[b] = plane(insn.a, b) ^ plane(insn.b, b);
            break;
          case BOp::Eq:
            dst[0] = eqPlane(insn.a, insn.b);
            break;
          case BOp::Ne:
            dst[0] = ~eqPlane(insn.a, insn.b);
            break;
          case BOp::Lt:
            dst[0] = borrowOut(insn.a, insn.b);
            break;
          case BOp::Le:
            dst[0] = ~borrowOut(insn.b, insn.a);
            break;
          case BOp::Gt:
            dst[0] = borrowOut(insn.b, insn.a);
            break;
          case BOp::Ge:
            dst[0] = ~borrowOut(insn.a, insn.b);
            break;
          case BOp::LAnd:
            dst[0] = orPlanes(insn.a) & orPlanes(insn.b);
            break;
          case BOp::LOr:
            dst[0] = orPlanes(insn.a) | orPlanes(insn.b);
            break;
          case BOp::Mux: {
            const uint64_t sel = orPlanes(insn.a);
            for (unsigned b = 0; b < wd; ++b)
                dst[b] = (sel & plane(insn.b, b)) |
                         (~sel & plane(insn.c, b));
            break;
          }
          case BOp::Halt:
          case BOp::Count:
            break;
        }
    }
    return p.legalReg == kNoReg ? active
                                : orPlanes(p.legalReg) & active;
}

void
SlicedKernel::expandBatch(
    const BitVec *const *sources, size_t count,
    const std::function<void(size_t, uint64_t, fsm::Transition &&)>
        &sink)
{
    const Program &p = *prog_;
    if (count == 0)
        return;
    if (count > 64)
        panic("SlicedKernel::expandBatch: more than 64 lanes");
    const uint64_t active =
        count == 64 ? ~uint64_t(0) : (uint64_t(1) << count) - 1;

    telemetry::counter("compile.sliced_batches").add(1);
    telemetry::histogram("compile.lane_occupancy",
                         laneOccupancyBounds())
        .record(static_cast<double>(count));

    // Transpose the source state fields into planes, lane l = source l.
    const fsm::StateLayout &layout = p.layout;
    for (size_t v = 0; v < p.stateVars.size(); ++v) {
        uint64_t *pl = planes_.data() + planeOff_[v];
        const unsigned w = p.regBits[v];
        std::fill(pl, pl + w, 0);
        for (size_t lane = 0; lane < count; ++lane) {
            const uint64_t value = layout.get(*sources[lane], v);
            for (unsigned b = 0; b < w; ++b)
                pl[b] |= ((value >> b) & 1) << lane;
        }
    }

    for (size_t lane = 0; lane < count; ++lane)
        buffers_[lane].clear();

    const size_t num_choice = p.choiceVars.size();
    std::vector<uint32_t> tuple(num_choice, 0);
    const size_t state_bits = layout.totalBits();
    for (uint64_t code = 0; code < p.numCombos; ++code) {
        // Every lane shares this choice code: the choice registers
        // are broadcast constants for the whole evaluation.
        for (size_t j = 0; j < num_choice; ++j) {
            const uint16_t reg =
                static_cast<uint16_t>(p.choiceBase + j);
            uint64_t *pl = planes_.data() + planeOff_[reg];
            for (unsigned b = 0; b < p.regBits[reg]; ++b)
                pl[b] = broadcast(tuple[j], b);
        }

        uint64_t legal = execPlanes(active);
        for (uint64_t rest = legal; rest;) {
            const unsigned lane =
                static_cast<unsigned>(__builtin_ctzll(rest));
            rest &= rest - 1;
            fsm::Transition t;
            t.next = BitVec(state_bits);
            for (size_t v = 0; v < p.nextRegs.size(); ++v)
                layout.set(t.next, v, gather(p.nextRegs[v], lane));
            if (p.instrReg != kNoReg) {
                t.instructions = static_cast<unsigned>(
                    gather(p.instrReg, lane));
            }
            buffers_[lane].emplace_back(code, std::move(t));
        }

        for (size_t j = 0; j < num_choice; ++j) {
            if (++tuple[j] < p.choiceVars[j].cardinality)
                break;
            tuple[j] = 0;
        }
    }

    // Emit in canonical order: sources in batch order, codes
    // ascending within each source.
    for (size_t lane = 0; lane < count; ++lane) {
        for (auto &[code, trans] : buffers_[lane])
            sink(lane, code, std::move(trans));
        buffers_[lane].clear();
    }
}

} // namespace archval::compile

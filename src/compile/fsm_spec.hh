/**
 * @file
 * Flat expression IR for compiled FSM next-state functions.
 *
 * An FsmSpec is the lowering-friendly view of a model's synchronous
 * step: one arena of side-effect-free expression nodes (DAG — the
 * builder hash-conses structurally identical subtrees) plus roots for
 * each state variable's next value, the optional per-edge instruction
 * count, and an optional legality predicate. Producers (today the
 * mini-Verilog translator, `hdl/translate`) emit a spec whose
 * evaluation is *bit-exact* with their interpreted step function; the
 * compile library lowers it to bytecode (`compile::lower`) executed by
 * the scalar and 64-lane bit-sliced kernels.
 *
 * Evaluation semantics (mirrors `HdlModel::Impl::eval` exactly):
 * every node yields a uint64; `width` is the number of low bits kept
 * after the op (64 = keep all). Producers encode their masking rules
 * into `width` — the kernels apply no masking of their own beyond it.
 */

#ifndef ARCHVAL_COMPILE_FSM_SPEC_HH
#define ARCHVAL_COMPILE_FSM_SPEC_HH

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "fsm/model.hh"

namespace archval::compile
{

/** Spec node operations. All are pure; none may trap. */
enum class SpecOp : uint8_t
{
    Const,    ///< imm
    StateRef, ///< state variable `a` (already masked to its width)
    ChoiceRef, ///< choice variable `a` (value in [0, cardinality))
    Mask,     ///< a & maskFor(width)
    Not,      ///< !a  (logical, 0/1)
    BitNot,   ///< ~a & maskFor(width)
    Neg,      ///< (~a + 1) & maskFor(width)
    RedXor,   ///< popcount(a) & 1
    Add,      ///< (a + b) & maskFor(width)
    Sub,      ///< (a - b) & maskFor(width)
    Shl,      ///< b >= 64 ? 0 : (a << b) & maskFor(width)
    Shr,      ///< b >= 64 ? 0 : a >> b   (never masked)
    And,      ///< a & b
    Or,       ///< a | b
    Xor,      ///< a ^ b
    Eq,       ///< a == b
    Ne,       ///< a != b
    Lt,       ///< a < b   (unsigned)
    Le,       ///< a <= b
    Gt,       ///< a > b
    Ge,       ///< a >= b
    LAnd,     ///< (a != 0) && (b != 0)
    LOr,      ///< (a != 0) || (b != 0)
    Mux,      ///< a ? b : c  (branches unmasked)
};

/** Sentinel for "no node" (absent instruction/legality root). */
constexpr uint32_t kNoNode = std::numeric_limits<uint32_t>::max();

/** One arena node. Children always precede parents in the arena. */
struct SpecNode
{
    SpecOp op = SpecOp::Const;
    uint8_t width = 64; ///< low bits kept after the op; 64 = no mask
    uint32_t a = 0;     ///< child index / leaf variable index
    uint32_t b = 0;
    uint32_t c = 0;
    uint64_t imm = 0;   ///< Const value

    bool operator==(const SpecNode &o) const
    {
        return op == o.op && width == o.width && a == o.a &&
               b == o.b && c == o.c && imm == o.imm;
    }
};

/**
 * A compiled-form FSM step: next-state roots over the node arena.
 *
 * A transition is legal iff `legalRoot` is absent or evaluates
 * non-zero; next state var `i` is `nodes[nextRoots[i]]` (the producer
 * masks it to the variable width); the edge instruction count is
 * `nodes[instrRoot]` truncated to 32 bits (0 when absent).
 */
struct FsmSpec
{
    std::string name;
    std::vector<fsm::StateVarInfo> stateVars;
    std::vector<fsm::ChoiceVarInfo> choiceVars;
    std::vector<SpecNode> nodes;
    std::vector<uint32_t> nextRoots; ///< one per state variable
    uint32_t instrRoot = kNoNode;
    uint32_t legalRoot = kNoNode;
};

/**
 * Hash-consing builder over an FsmSpec arena.
 *
 * Structurally identical nodes intern to one index, so expression
 * trees that the symbolic executor cloned many times (every if/else
 * join copies its environment) collapse back into a DAG; the bytecode
 * then evaluates each distinct subexpression once per step.
 */
class SpecBuilder
{
  public:
    explicit SpecBuilder(FsmSpec &spec) : spec_(spec) {}

    uint32_t constant(uint64_t value);
    uint32_t stateRef(uint32_t var);
    uint32_t choiceRef(uint32_t var);
    /** a & maskFor(width); returns @p a unchanged when width >= 64. */
    uint32_t mask(uint32_t a, unsigned width);
    uint32_t unary(SpecOp op, uint32_t a, unsigned width = 64);
    uint32_t binary(SpecOp op, uint32_t a, uint32_t b,
                    unsigned width = 64);
    uint32_t mux(uint32_t cond, uint32_t thenN, uint32_t elseN);

  private:
    struct NodeHash
    {
        size_t operator()(const SpecNode &n) const;
    };

    uint32_t intern(SpecNode node);

    FsmSpec &spec_;
    std::unordered_map<SpecNode, uint32_t, NodeHash> cache_;
};

} // namespace archval::compile

#endif // ARCHVAL_COMPILE_FSM_SPEC_HH

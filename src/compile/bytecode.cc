#include "bytecode.hh"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "support/status.hh"
#include "support/telemetry.hh"
#include "support/timer.hh"

namespace archval::compile
{

namespace
{

uint8_t
valueBits(uint64_t value)
{
    return static_cast<uint8_t>(std::bit_width(value));
}

uint8_t
clampBits(unsigned bits)
{
    return static_cast<uint8_t>(std::min(bits, 64u));
}

} // namespace

std::shared_ptr<const Program>
lower(const FsmSpec &spec)
{
    telemetry::ScopedSpan span("compile.lower");
    WallTimer timer;

    auto program = std::make_shared<Program>();
    Program &p = *program;
    p.name = spec.name;
    p.stateVars = spec.stateVars;
    p.choiceVars = spec.choiceVars;
    p.layout = fsm::StateLayout(spec.stateVars);
    for (const auto &var : spec.choiceVars)
        p.numCombos *= var.cardinality;

    const size_t num_state = spec.stateVars.size();
    const size_t num_choice = spec.choiceVars.size();
    p.choiceBase = static_cast<uint16_t>(num_state);

    auto ensure_reg = [&](size_t reg) {
        if (reg >= 0xFFFF)
            fatal("compile: register file exceeds 65534 registers");
        if (p.regBits.size() <= reg) {
            p.regBits.resize(reg + 1, 0);
            p.regIsConst.resize(reg + 1, 0);
            p.regConstValue.resize(reg + 1, 0);
        }
    };

    // Fixed registers: state fields then choice values.
    for (size_t i = 0; i < num_state; ++i) {
        ensure_reg(i);
        p.regBits[i] =
            clampBits(static_cast<unsigned>(spec.stateVars[i].numBits));
    }
    for (size_t i = 0; i < num_choice; ++i) {
        size_t reg = num_state + i;
        ensure_reg(reg);
        uint32_t card = spec.choiceVars[i].cardinality;
        p.regBits[reg] = valueBits(card ? card - 1 : 0);
    }

    size_t next_reg = num_state + num_choice;
    std::unordered_map<uint64_t, uint16_t> const_regs;
    auto const_reg = [&](uint64_t value) -> uint16_t {
        auto it = const_regs.find(value);
        if (it != const_regs.end())
            return it->second;
        ensure_reg(next_reg);
        uint16_t reg = static_cast<uint16_t>(next_reg++);
        p.regBits[reg] = valueBits(value);
        p.regIsConst[reg] = 1;
        p.regConstValue[reg] = value;
        p.constInit.emplace_back(reg, value);
        const_regs.emplace(value, reg);
        return reg;
    };

    // Lower nodes in arena order; children always precede parents.
    std::vector<uint16_t> node_reg(spec.nodes.size(), 0);
    for (size_t ni = 0; ni < spec.nodes.size(); ++ni) {
        const SpecNode &node = spec.nodes[ni];
        switch (node.op) {
          case SpecOp::Const:
            node_reg[ni] = const_reg(node.imm);
            continue;
          case SpecOp::StateRef:
            node_reg[ni] = static_cast<uint16_t>(node.a);
            continue;
          case SpecOp::ChoiceRef:
            node_reg[ni] =
                static_cast<uint16_t>(num_state + node.a);
            continue;
          default:
            break;
        }

        const uint16_t ra = node_reg[node.a];
        const uint8_t ba = p.regBits[ra];
        if (node.op == SpecOp::Mask && ba <= node.width) {
            // Masking a value already narrower than the field is a
            // no-op: alias instead of emitting an instruction.
            node_reg[ni] = ra;
            continue;
        }

        Insn insn;
        insn.width = node.width;
        insn.a = ra;
        uint16_t rb = 0;
        uint8_t bb = 0;
        uint8_t bits = 64;
        switch (node.op) {
          case SpecOp::Mask:
            insn.op = BOp::Mask;
            bits = std::min<uint8_t>(ba, node.width);
            break;
          case SpecOp::Not:
            insn.op = BOp::Not;
            bits = 1;
            break;
          case SpecOp::BitNot:
            insn.op = BOp::BitNot;
            bits = node.width;
            break;
          case SpecOp::Neg:
            insn.op = BOp::Neg;
            bits = node.width;
            break;
          case SpecOp::RedXor:
            insn.op = BOp::RedXor;
            bits = 1;
            break;
          case SpecOp::Add:
          case SpecOp::Sub:
          case SpecOp::Shl:
          case SpecOp::Shr:
          case SpecOp::And:
          case SpecOp::Or:
          case SpecOp::Xor:
          case SpecOp::Eq:
          case SpecOp::Ne:
          case SpecOp::Lt:
          case SpecOp::Le:
          case SpecOp::Gt:
          case SpecOp::Ge:
          case SpecOp::LAnd:
          case SpecOp::LOr:
            rb = node_reg[node.b];
            bb = p.regBits[rb];
            insn.b = rb;
            switch (node.op) {
              case SpecOp::Add:
                insn.op = BOp::Add;
                bits = std::min<unsigned>(
                    node.width, unsigned(std::max(ba, bb)) + 1);
                break;
              case SpecOp::Sub:
                insn.op = BOp::Sub;
                bits = node.width;
                break;
              case SpecOp::Shl:
                insn.op = BOp::Shl;
                if (p.regIsConst[rb]) {
                    uint64_t sh = p.regConstValue[rb];
                    bits = sh >= 64
                               ? 0
                               : std::min<unsigned>(
                                     node.width,
                                     std::min<uint64_t>(
                                         64, ba + sh));
                } else {
                    bits = node.width;
                }
                break;
              case SpecOp::Shr:
                insn.op = BOp::Shr;
                if (p.regIsConst[rb]) {
                    uint64_t sh = p.regConstValue[rb];
                    bits = sh >= ba ? 0
                                    : static_cast<uint8_t>(ba - sh);
                } else {
                    bits = ba;
                }
                break;
              case SpecOp::And:
                insn.op = BOp::And;
                bits = std::min(ba, bb);
                break;
              case SpecOp::Or:
                insn.op = BOp::Or;
                bits = std::max(ba, bb);
                break;
              case SpecOp::Xor:
                insn.op = BOp::Xor;
                bits = std::max(ba, bb);
                break;
              case SpecOp::Eq:
                insn.op = BOp::Eq;
                bits = 1;
                break;
              case SpecOp::Ne:
                insn.op = BOp::Ne;
                bits = 1;
                break;
              case SpecOp::Lt:
                insn.op = BOp::Lt;
                bits = 1;
                break;
              case SpecOp::Le:
                insn.op = BOp::Le;
                bits = 1;
                break;
              case SpecOp::Gt:
                insn.op = BOp::Gt;
                bits = 1;
                break;
              case SpecOp::Ge:
                insn.op = BOp::Ge;
                bits = 1;
                break;
              case SpecOp::LAnd:
                insn.op = BOp::LAnd;
                bits = 1;
                break;
              case SpecOp::LOr:
                insn.op = BOp::LOr;
                bits = 1;
                break;
              default:
                break;
            }
            break;
          case SpecOp::Mux:
            insn.op = BOp::Mux;
            rb = node_reg[node.b];
            insn.b = rb;
            insn.c = node_reg[node.c];
            bits = std::max(p.regBits[rb], p.regBits[insn.c]);
            break;
          default:
            fatal("compile: unhandled spec op");
        }

        ensure_reg(next_reg);
        insn.dst = static_cast<uint16_t>(next_reg++);
        p.regBits[insn.dst] = clampBits(bits);
        p.insns.push_back(insn);
        node_reg[ni] = insn.dst;
    }

    Insn halt;
    halt.op = BOp::Halt;
    p.insns.push_back(halt);

    p.numRegs = next_reg;
    if (spec.nextRoots.size() != num_state)
        fatal("compile: spec next-root arity mismatch");
    p.nextRegs.reserve(num_state);
    for (uint32_t root : spec.nextRoots)
        p.nextRegs.push_back(node_reg[root]);
    if (spec.instrRoot != kNoNode)
        p.instrReg = node_reg[spec.instrRoot];
    if (spec.legalRoot != kNoNode)
        p.legalReg = node_reg[spec.legalRoot];

    telemetry::counter("compile.programs").add(1);
    telemetry::counter("compile.bytecode_bytes").add(p.byteSize());
    telemetry::counter("compile.lower_micros")
        .add(static_cast<uint64_t>(timer.seconds() * 1e6));
    return program;
}

} // namespace archval::compile

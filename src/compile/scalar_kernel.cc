#include "kernel.hh"

#include <algorithm>

#include "support/status.hh"

namespace archval::compile
{

namespace
{

inline uint64_t
maskFor(unsigned width)
{
    return width >= 64 ? ~uint64_t(0)
                       : (uint64_t(1) << width) - 1;
}

} // namespace

ScalarKernel::ScalarKernel(std::shared_ptr<const Program> program)
    : prog_(std::move(program)), regs_(prog_->numRegs, 0)
{
    for (const auto &[reg, value] : prog_->constInit)
        regs_[reg] = value;
}

void
ScalarKernel::loadState(const BitVec &state)
{
    const fsm::StateLayout &layout = prog_->layout;
    for (size_t i = 0; i < prog_->stateVars.size(); ++i)
        regs_[i] = layout.get(state, i);
}

/**
 * The threaded interpreter: one direct `goto *` per instruction on
 * GCC/Clang (no bounds check — the Halt sentinel terminates), a
 * switch loop elsewhere. Label order must match enum BOp.
 */
void
ScalarKernel::exec()
{
    const Insn *pc = prog_->insns.data();
    uint64_t *r = regs_.data();

#if defined(__GNUC__) || defined(__clang__)
    static const void *const kLabels[] = {
        &&lMask, &&lNot, &&lBitNot, &&lNeg, &&lRedXor, &&lAdd,
        &&lSub,  &&lShl, &&lShr,    &&lAnd, &&lOr,     &&lXor,
        &&lEq,   &&lNe,  &&lLt,     &&lLe,  &&lGt,     &&lGe,
        &&lLAnd, &&lLOr, &&lMux,    &&lHalt,
    };
#define DISPATCH() goto *kLabels[static_cast<size_t>((pc)->op)]
#define NEXT()                                                        \
    do {                                                              \
        ++pc;                                                         \
        DISPATCH();                                                   \
    } while (0)
    DISPATCH();
lMask:
    r[pc->dst] = r[pc->a] & maskFor(pc->width);
    NEXT();
lNot:
    r[pc->dst] = r[pc->a] == 0;
    NEXT();
lBitNot:
    r[pc->dst] = ~r[pc->a] & maskFor(pc->width);
    NEXT();
lNeg:
    r[pc->dst] = (~r[pc->a] + 1) & maskFor(pc->width);
    NEXT();
lRedXor:
    r[pc->dst] = __builtin_popcountll(r[pc->a]) & 1;
    NEXT();
lAdd:
    r[pc->dst] = (r[pc->a] + r[pc->b]) & maskFor(pc->width);
    NEXT();
lSub:
    r[pc->dst] = (r[pc->a] - r[pc->b]) & maskFor(pc->width);
    NEXT();
lShl:
    r[pc->dst] = r[pc->b] >= 64
                     ? 0
                     : (r[pc->a] << r[pc->b]) & maskFor(pc->width);
    NEXT();
lShr:
    r[pc->dst] = r[pc->b] >= 64 ? 0 : r[pc->a] >> r[pc->b];
    NEXT();
lAnd:
    r[pc->dst] = r[pc->a] & r[pc->b];
    NEXT();
lOr:
    r[pc->dst] = r[pc->a] | r[pc->b];
    NEXT();
lXor:
    r[pc->dst] = r[pc->a] ^ r[pc->b];
    NEXT();
lEq:
    r[pc->dst] = r[pc->a] == r[pc->b];
    NEXT();
lNe:
    r[pc->dst] = r[pc->a] != r[pc->b];
    NEXT();
lLt:
    r[pc->dst] = r[pc->a] < r[pc->b];
    NEXT();
lLe:
    r[pc->dst] = r[pc->a] <= r[pc->b];
    NEXT();
lGt:
    r[pc->dst] = r[pc->a] > r[pc->b];
    NEXT();
lGe:
    r[pc->dst] = r[pc->a] >= r[pc->b];
    NEXT();
lLAnd:
    r[pc->dst] = r[pc->a] != 0 && r[pc->b] != 0;
    NEXT();
lLOr:
    r[pc->dst] = r[pc->a] != 0 || r[pc->b] != 0;
    NEXT();
lMux:
    r[pc->dst] = r[pc->a] ? r[pc->b] : r[pc->c];
    NEXT();
lHalt:
    return;
#undef NEXT
#undef DISPATCH
#else
    for (;; ++pc) {
        switch (pc->op) {
          case BOp::Mask:
            r[pc->dst] = r[pc->a] & maskFor(pc->width);
            break;
          case BOp::Not:
            r[pc->dst] = r[pc->a] == 0;
            break;
          case BOp::BitNot:
            r[pc->dst] = ~r[pc->a] & maskFor(pc->width);
            break;
          case BOp::Neg:
            r[pc->dst] = (~r[pc->a] + 1) & maskFor(pc->width);
            break;
          case BOp::RedXor:
            r[pc->dst] = __builtin_popcountll(r[pc->a]) & 1;
            break;
          case BOp::Add:
            r[pc->dst] = (r[pc->a] + r[pc->b]) & maskFor(pc->width);
            break;
          case BOp::Sub:
            r[pc->dst] = (r[pc->a] - r[pc->b]) & maskFor(pc->width);
            break;
          case BOp::Shl:
            r[pc->dst] =
                r[pc->b] >= 64
                    ? 0
                    : (r[pc->a] << r[pc->b]) & maskFor(pc->width);
            break;
          case BOp::Shr:
            r[pc->dst] = r[pc->b] >= 64 ? 0 : r[pc->a] >> r[pc->b];
            break;
          case BOp::And:
            r[pc->dst] = r[pc->a] & r[pc->b];
            break;
          case BOp::Or:
            r[pc->dst] = r[pc->a] | r[pc->b];
            break;
          case BOp::Xor:
            r[pc->dst] = r[pc->a] ^ r[pc->b];
            break;
          case BOp::Eq:
            r[pc->dst] = r[pc->a] == r[pc->b];
            break;
          case BOp::Ne:
            r[pc->dst] = r[pc->a] != r[pc->b];
            break;
          case BOp::Lt:
            r[pc->dst] = r[pc->a] < r[pc->b];
            break;
          case BOp::Le:
            r[pc->dst] = r[pc->a] <= r[pc->b];
            break;
          case BOp::Gt:
            r[pc->dst] = r[pc->a] > r[pc->b];
            break;
          case BOp::Ge:
            r[pc->dst] = r[pc->a] >= r[pc->b];
            break;
          case BOp::LAnd:
            r[pc->dst] = r[pc->a] != 0 && r[pc->b] != 0;
            break;
          case BOp::LOr:
            r[pc->dst] = r[pc->a] != 0 || r[pc->b] != 0;
            break;
          case BOp::Mux:
            r[pc->dst] = r[pc->a] ? r[pc->b] : r[pc->c];
            break;
          case BOp::Halt:
          default:
            return;
        }
    }
#endif
}

bool
ScalarKernel::legal() const
{
    return prog_->legalReg == kNoReg || regs_[prog_->legalReg] != 0;
}

fsm::Transition
ScalarKernel::materialize() const
{
    const Program &p = *prog_;
    fsm::Transition t;
    t.next = BitVec(p.layout.totalBits());
    for (size_t i = 0; i < p.nextRegs.size(); ++i)
        p.layout.set(t.next, i, regs_[p.nextRegs[i]]);
    if (p.instrReg != kNoReg)
        t.instructions = static_cast<unsigned>(regs_[p.instrReg]);
    return t;
}

std::optional<fsm::Transition>
ScalarKernel::next(const BitVec &state, const fsm::Choice &choice)
{
    const Program &p = *prog_;
    if (choice.size() != p.choiceVars.size())
        panic("ScalarKernel::next choice arity mismatch");
    loadState(state);
    for (size_t i = 0; i < choice.size(); ++i)
        regs_[p.choiceBase + i] = choice[i];
    exec();
    if (!legal())
        return std::nullopt;
    return materialize();
}

void
ScalarKernel::forEachTransition(
    const BitVec &state,
    const std::function<void(uint64_t, fsm::Transition &&)> &fn)
{
    const Program &p = *prog_;
    loadState(state);
    const size_t num_choice = p.choiceVars.size();
    uint64_t *choice = regs_.data() + p.choiceBase;
    std::fill(choice, choice + num_choice, 0);
    const uint64_t combos = p.numCombos;
    for (uint64_t code = 0; code < combos; ++code) {
        exec();
        if (legal())
            fn(code, materialize());
        // Mixed-radix increment matching packed-code order (variable
        // 0 is the fastest-varying, as in ChoiceCodec).
        for (size_t i = 0; i < num_choice; ++i) {
            if (++choice[i] < p.choiceVars[i].cardinality)
                break;
            choice[i] = 0;
        }
    }
}

} // namespace archval::compile

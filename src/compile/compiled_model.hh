/**
 * @file
 * fsm::Model implementation backed by compiled bytecode.
 *
 * CompiledModel lowers an FsmSpec once at construction and serves the
 * Model interface through scalar bytecode kernels. Its transitions are
 * bit-identical to the spec producer's interpreted step — the
 * differential suites in tests/test_compile.cc enforce this over every
 * HDL design. next()/forEachTransition() are thread-safe (each call
 * uses a private register file), so the parallel enumerator can drive
 * one instance from many workers.
 */

#ifndef ARCHVAL_COMPILE_COMPILED_MODEL_HH
#define ARCHVAL_COMPILE_COMPILED_MODEL_HH

#include "compile/kernel.hh"

namespace archval::compile
{

/** Bytecode-backed synchronous FSM model. */
class CompiledModel : public fsm::Model
{
  public:
    /** Lower @p spec and wrap it; fatal on a malformed spec. */
    explicit CompiledModel(std::shared_ptr<const FsmSpec> spec);

    std::string name() const override;
    const std::vector<fsm::StateVarInfo> &stateVars() const override;
    const std::vector<fsm::ChoiceVarInfo> &choiceVars() const override;
    BitVec resetState() const override;
    std::optional<fsm::Transition>
    next(const BitVec &state, const fsm::Choice &choice) const override;
    void forEachTransition(
        const BitVec &state,
        const std::function<void(uint64_t, fsm::Transition &&)> &fn)
        const override;
    std::shared_ptr<const FsmSpec> compileSpec() const override;

    /** @return the lowered program (shared with kernels). */
    std::shared_ptr<const Program> program() const { return program_; }

  private:
    std::shared_ptr<const FsmSpec> spec_;
    std::shared_ptr<const Program> program_;
};

} // namespace archval::compile

#endif // ARCHVAL_COMPILE_COMPILED_MODEL_HH

#include "fsm_spec.hh"

namespace archval::compile
{

size_t
SpecBuilder::NodeHash::operator()(const SpecNode &n) const
{
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&](uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
    };
    mix(static_cast<uint64_t>(n.op));
    mix(n.width);
    mix(n.a);
    mix(n.b);
    mix(n.c);
    mix(n.imm);
    return static_cast<size_t>(h);
}

uint32_t
SpecBuilder::intern(SpecNode node)
{
    auto it = cache_.find(node);
    if (it != cache_.end())
        return it->second;
    uint32_t index = static_cast<uint32_t>(spec_.nodes.size());
    spec_.nodes.push_back(node);
    cache_.emplace(node, index);
    return index;
}

uint32_t
SpecBuilder::constant(uint64_t value)
{
    SpecNode node;
    node.op = SpecOp::Const;
    node.imm = value;
    return intern(node);
}

uint32_t
SpecBuilder::stateRef(uint32_t var)
{
    SpecNode node;
    node.op = SpecOp::StateRef;
    node.a = var;
    return intern(node);
}

uint32_t
SpecBuilder::choiceRef(uint32_t var)
{
    SpecNode node;
    node.op = SpecOp::ChoiceRef;
    node.a = var;
    return intern(node);
}

uint32_t
SpecBuilder::mask(uint32_t a, unsigned width)
{
    if (width >= 64)
        return a;
    return unary(SpecOp::Mask, a, width);
}

uint32_t
SpecBuilder::unary(SpecOp op, uint32_t a, unsigned width)
{
    SpecNode node;
    node.op = op;
    node.width = static_cast<uint8_t>(width > 64 ? 64 : width);
    node.a = a;
    return intern(node);
}

uint32_t
SpecBuilder::binary(SpecOp op, uint32_t a, uint32_t b, unsigned width)
{
    SpecNode node;
    node.op = op;
    node.width = static_cast<uint8_t>(width > 64 ? 64 : width);
    node.a = a;
    node.b = b;
    return intern(node);
}

uint32_t
SpecBuilder::mux(uint32_t cond, uint32_t thenN, uint32_t elseN)
{
    SpecNode node;
    node.op = SpecOp::Mux;
    node.a = cond;
    node.b = thenN;
    node.c = elseN;
    return intern(node);
}

} // namespace archval::compile

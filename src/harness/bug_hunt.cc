#include "bug_hunt.hh"

#include <algorithm>

#include "support/strings.hh"
#include "support/telemetry.hh"

namespace archval::harness
{

BugHunt::BugHunt(const rtl::PpConfig &config,
                 const rtl::PpFsmModel &model,
                 const graph::StateGraph &graph,
                 const std::vector<vecgen::TestTrace> &tour_traces,
                 ReplayOptions replay)
    : config_(config), model_(model), graph_(graph),
      tourTraces_(tour_traces), replay_(replay)
{
}

HuntResult
BugHunt::hunt(rtl::BugId bug, uint64_t random_budget, uint64_t seed)
{
    HuntResult result;
    result.bug = bug;
    rtl::BugSet bugs;
    bugs.set(static_cast<size_t>(bug));

    // Both trace arms replay through the checkpointed engine with
    // early exit: results before and at the first divergence are
    // byte-identical to the sequential player, so the accumulation
    // below reproduces the old trace-at-a-time loop exactly.
    ReplayOptions replay = replay_;
    replay.stopOnDivergence = true;
    replay.warmCache = warmCache_;
    ReplayEngine engine(config_, replay);

    // Transition-tour vectors, in generation order. With a warm
    // cache installed the batch carries a bug-free donor block in
    // front: the first hunt populates the cache (donor results +
    // stride chains), every later hunt's donor block warm-copies,
    // and triggered jobs resume from the cached chain instead of
    // replaying the bug-free lead from reset. The bugged block's
    // results — the ones read below — are byte-identical either way.
    const bool warm_tour =
        warmCache_ && replay.checkpointBudgetBytes > 0;
    {
        telemetry::ScopedSpan arm_span(
            "hunt.tour", "bug", static_cast<uint64_t>(bug));
        std::vector<rtl::BugSet> tour_sets;
        if (warm_tour)
            tour_sets.push_back(rtl::BugSet{});
        tour_sets.push_back(bugs);
        std::vector<PlayResult> tour_plays =
            engine.playAll(tourTraces_, tour_sets);
        const size_t base =
            (tour_sets.size() - 1) * tourTraces_.size();
        for (size_t t = 0; t < tourTraces_.size(); ++t) {
            const PlayResult &play = tour_plays[base + t];
            if (play.skipped)
                break;
            result.tour.instructions += play.instructions;
            result.tour.cycles += play.cycles;
            if (play.diverged) {
                result.tour.detected = true;
                result.tour.detail = formatString(
                    "trace %zu: %s", tourTraces_[t].traceIndex,
                    play.diff.c_str());
                break;
            }
        }
    }

    // Biased-random stimulus (naturalistic event rates) through the
    // same generator and engine — the paper's random baseline. Walk
    // content never depends on play results, so pre-generating a
    // batch and replaying it preserves the sequential arm's trace
    // sequence, accumulation and stopping point.
    {
        telemetry::ScopedSpan arm_span(
            "hunt.random", "bug", static_cast<uint64_t>(bug));
        BiasedWalker walker(model_, graph_, seed);
        vecgen::VectorGenerator generator(model_, seed ^ 0x5eedu);
        const uint64_t chunk = 2'000;
        const size_t batch_size = std::max(2 * replay.numThreads, 4u);
        size_t walk_index = 0;
        bool exhausted = false;
        while (result.random.instructions < random_budget &&
               !exhausted && !result.random.detected) {
            std::vector<vecgen::TestTrace> batch;
            while (batch.size() < batch_size) {
                graph::Trace walk = walker.walk(chunk);
                if (walk.edges.empty()) {
                    exhausted = true;
                    break;
                }
                batch.push_back(
                    generator.generate(graph_, walk, walk_index++));
            }
            if (batch.empty())
                break;
            std::vector<PlayResult> plays = engine.playAll(batch, bugs);
            for (size_t i = 0; i < batch.size(); ++i) {
                const PlayResult &play = plays[i];
                if (play.skipped)
                    break;
                result.random.instructions += play.instructions;
                result.random.cycles += play.cycles;
                if (play.diverged) {
                    result.random.detected = true;
                    result.random.detail = formatString(
                        "walk %zu: %s", batch[i].traceIndex,
                        play.diff.c_str());
                    break;
                }
                if (result.random.instructions >= random_budget)
                    break;
            }
        }
    }

    // Hand-written directed tests.
    {
        telemetry::ScopedSpan arm_span(
            "hunt.directed", "bug", static_cast<uint64_t>(bug));
        for (const DirectedResult &directed :
             runDirectedSuite(config_, bugs)) {
            if (!directed.ran)
                continue;
            result.directed.instructions += directed.instructions;
            result.directed.cycles += directed.cycles;
            if (directed.diverged) {
                result.directed.detected = true;
                result.directed.detail =
                    directed.name + ": " + directed.diff;
                break;
            }
        }
    }

    // Coverage-guided fuzzing, when an arm is installed.
    if (fuzzArm_) {
        telemetry::ScopedSpan arm_span(
            "hunt.fuzz", "bug", static_cast<uint64_t>(bug));
        result.fuzz = fuzzArm_(bug);
        result.fuzzRan = true;
    }

    return result;
}

std::string
renderHuntTable(const std::vector<HuntResult> &results)
{
    bool with_fuzz = false;
    for (const auto &r : results)
        with_fuzz = with_fuzz || r.fuzzRan;

    std::string out;
    out += formatString("%-5s  %-28s  %-28s  %-28s", "bug",
                        "tour vectors", "random vectors",
                        "directed tests");
    if (with_fuzz)
        out += formatString("  %-28s", "fuzz campaign");
    out += "\n";
    auto cell = [](const Detection &d) {
        if (!d.detected)
            return std::string("not detected");
        return formatString("detected @ %s instrs",
                            withCommas(d.instructions).c_str());
    };
    for (const auto &r : results) {
        out += formatString("%-5s  %-28s  %-28s  %-28s",
                            rtl::bugName(r.bug),
                            cell(r.tour).c_str(),
                            cell(r.random).c_str(),
                            cell(r.directed).c_str());
        if (with_fuzz) {
            out += formatString(
                "  %-28s",
                r.fuzzRan ? cell(r.fuzz).c_str() : "not run");
        }
        out += "\n";
    }
    return out;
}

} // namespace archval::harness

#include "bug_hunt.hh"

#include "support/strings.hh"

namespace archval::harness
{

BugHunt::BugHunt(const rtl::PpConfig &config,
                 const rtl::PpFsmModel &model,
                 const graph::StateGraph &graph,
                 const std::vector<vecgen::TestTrace> &tour_traces)
    : config_(config), model_(model), graph_(graph),
      tourTraces_(tour_traces)
{
}

HuntResult
BugHunt::hunt(rtl::BugId bug, uint64_t random_budget, uint64_t seed)
{
    HuntResult result;
    result.bug = bug;
    rtl::BugSet bugs;
    bugs.set(static_cast<size_t>(bug));

    VectorPlayer player(config_);

    // Transition-tour vectors, in generation order.
    for (const auto &trace : tourTraces_) {
        PlayResult play = player.play(trace, bugs);
        result.tour.instructions += play.instructions;
        result.tour.cycles += play.cycles;
        if (play.diverged) {
            result.tour.detected = true;
            result.tour.detail = formatString(
                "trace %zu: %s", trace.traceIndex, play.diff.c_str());
            break;
        }
    }

    // Biased-random stimulus (naturalistic event rates) through the
    // same generator and player — the paper's random baseline.
    BiasedWalker walker(model_, graph_, seed);
    vecgen::VectorGenerator generator(model_, seed ^ 0x5eedu);
    const uint64_t chunk = 2'000;
    size_t walk_index = 0;
    while (result.random.instructions < random_budget) {
        graph::Trace walk = walker.walk(chunk);
        if (walk.edges.empty())
            break;
        vecgen::TestTrace trace =
            generator.generate(graph_, walk, walk_index++);
        PlayResult play = player.play(trace, bugs);
        result.random.instructions += play.instructions;
        result.random.cycles += play.cycles;
        if (play.diverged) {
            result.random.detected = true;
            result.random.detail = formatString(
                "walk %zu: %s", walk_index - 1, play.diff.c_str());
            break;
        }
    }

    // Hand-written directed tests.
    for (const DirectedResult &directed :
         runDirectedSuite(config_, bugs)) {
        if (!directed.ran)
            continue;
        result.directed.instructions += directed.instructions;
        result.directed.cycles += directed.cycles;
        if (directed.diverged) {
            result.directed.detected = true;
            result.directed.detail =
                directed.name + ": " + directed.diff;
            break;
        }
    }

    // Coverage-guided fuzzing, when an arm is installed.
    if (fuzzArm_) {
        result.fuzz = fuzzArm_(bug);
        result.fuzzRan = true;
    }

    return result;
}

std::string
renderHuntTable(const std::vector<HuntResult> &results)
{
    bool with_fuzz = false;
    for (const auto &r : results)
        with_fuzz = with_fuzz || r.fuzzRan;

    std::string out;
    out += formatString("%-5s  %-28s  %-28s  %-28s", "bug",
                        "tour vectors", "random vectors",
                        "directed tests");
    if (with_fuzz)
        out += formatString("  %-28s", "fuzz campaign");
    out += "\n";
    auto cell = [](const Detection &d) {
        if (!d.detected)
            return std::string("not detected");
        return formatString("detected @ %s instrs",
                            withCommas(d.instructions).c_str());
    };
    for (const auto &r : results) {
        out += formatString("%-5s  %-28s  %-28s  %-28s",
                            rtl::bugName(r.bug),
                            cell(r.tour).c_str(),
                            cell(r.random).c_str(),
                            cell(r.directed).c_str());
        if (with_fuzz) {
            out += formatString(
                "  %-28s",
                r.fuzzRan ? cell(r.fuzz).c_str() : "not run");
        }
        out += "\n";
    }
    return out;
}

} // namespace archval::harness

#include "bug5_scenario.hh"

#include "harness/vector_player.hh"
#include "pp/isa.hh"
#include "rtl/pp_core.hh"

namespace archval::harness
{

using rtl::PpChoiceVar;

namespace
{

void
set(rtl::ForcedSignals &signals, PpChoiceVar var, uint32_t value)
{
    signals[static_cast<size_t>(var)] = value;
}

} // namespace

Bug5Outcome
runBug5Scenario(const rtl::PpConfig &config, bool external_stall,
                bool bug_enabled)
{
    Bug5Outcome outcome;
    outcome.expectedValue = 0x1111;

    rtl::PpCore core(config, rtl::CoreMode::Vector);
    std::vector<uint32_t> stream = {
        pp::encodeLw(1, 0, 100), // the load that misses
        pp::encodeLw(2, 0, 200), // the following load (in the pipe)
        pp::encodeSend(3),       // source of the external stall
        pp::encodeNop(),
        pp::encodeNop(),
    };
    core.loadStream(stream);
    core.pokeDmem(100 / 4, outcome.expectedValue);
    core.pokeDmem(200 / 4, 0x2222);
    if (bug_enabled)
        core.setBug(rtl::BugId::Bug5MembusGlitch, true);

    auto cycle = [&](auto setup) {
        rtl::ForcedSignals signals{};
        setup(signals);
        core.forceSignals(signals);
        core.step();
        outcome.waveform.push_back(core.waveLine());
    };

    // Fetch the three instructions.
    const uint32_t load_class =
        static_cast<uint32_t>(pp::InstrClass::Load) - 1;
    const uint32_t send_class =
        static_cast<uint32_t>(pp::InstrClass::Send) - 1;
    cycle([&](rtl::ForcedSignals &s) {
        set(s, PpChoiceVar::IHit, 1);
        set(s, PpChoiceVar::FetchClass, load_class);
    });
    cycle([&](rtl::ForcedSignals &s) {
        set(s, PpChoiceVar::IHit, 1);
        set(s, PpChoiceVar::FetchClass, load_class);
    });
    cycle([&](rtl::ForcedSignals &s) {
        set(s, PpChoiceVar::IHit, 1);
        set(s, PpChoiceVar::FetchClass, send_class);
    });

    // The first load probes and misses (dhit forced low), then the
    // refill requests and is granted the memory port.
    cycle([](rtl::ForcedSignals &) {});
    cycle([](rtl::ForcedSignals &) {});

    // Critical word arrives: the processor restarts immediately; the
    // glitch window opens because the second load sits in the pipe.
    cycle([&](rtl::ForcedSignals &s) {
        set(s, PpChoiceVar::MemReply, 1);
        set(s, PpChoiceVar::IHit, 1);
        set(s, PpChoiceVar::FetchClass, 0); // ALU (a NOP)
    });

    // Remaining fill beats. The SEND is now in EX: holding the
    // Outbox not-ready in the first post-restart cycle is the
    // "external stall at the right time" of Figure 2.3.
    for (unsigned beat = 0; beat + 1 < config.lineWords; ++beat) {
        bool stall_now = external_stall && beat == 0;
        cycle([&](rtl::ForcedSignals &s) {
            set(s, PpChoiceVar::MemReply, 1);
            set(s, PpChoiceVar::OutboxReady, stall_now ? 0 : 1);
        });
    }
    if (config.lineWords == 1 && external_stall) {
        cycle([&](rtl::ForcedSignals &s) {
            set(s, PpChoiceVar::OutboxReady, 0);
        });
    }

    // Release the stall; the second load probes and hits.
    cycle([&](rtl::ForcedSignals &s) {
        set(s, PpChoiceVar::OutboxReady, 1);
        set(s, PpChoiceVar::DHit, 1);
    });

    // Drain.
    const rtl::ForcedSignals drain = VectorPlayer::drainSignals();
    for (unsigned i = 0; i < VectorPlayer::drainLength(config); ++i) {
        if (core.pipeEmpty())
            break;
        core.forceSignals(drain);
        core.step();
    }

    outcome.loadedValue = core.reg(1);
    outcome.corrupted = outcome.loadedValue != outcome.expectedValue;
    return outcome;
}

} // namespace archval::harness

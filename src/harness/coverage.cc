#include "coverage.hh"

#include "support/status.hh"

namespace archval::harness
{

CoverageTracker::CoverageTracker(const graph::StateGraph &graph)
    : graph_(graph), covered_(graph.numEdges(), false)
{
}

void
CoverageTracker::addEdge(graph::EdgeId edge, uint32_t instr_count)
{
    if (!covered_[edge]) {
        covered_[edge] = true;
        ++coveredCount_;
    }
    instructions_ += instr_count;
    ++cycles_;
}

void
CoverageTracker::addTrace(const graph::Trace &trace)
{
    for (graph::EdgeId e : trace.edges)
        addEdge(e, graph_.edge(e).instrCount);
}

void
CoverageTracker::samplePoint()
{
    curve_.push_back({instructions_, cycles_, coveredCount_});
}

void
CoverageTracker::merge(const CoverageTracker &other)
{
    if (covered_.size() != other.covered_.size())
        fatal("CoverageTracker::merge: trackers observe different "
              "graphs");
    for (size_t e = 0; e < covered_.size(); ++e) {
        if (other.covered_[e] && !covered_[e]) {
            covered_[e] = true;
            ++coveredCount_;
        }
    }
    instructions_ += other.instructions_;
    cycles_ += other.cycles_;
}

void
CoverageTracker::reset()
{
    covered_.assign(covered_.size(), false);
    coveredCount_ = 0;
    instructions_ = 0;
    cycles_ = 0;
    curve_.clear();
}

double
CoverageTracker::fraction() const
{
    return graph_.numEdges()
               ? double(coveredCount_) / double(graph_.numEdges())
               : 0.0;
}

} // namespace archval::harness

#include "coverage.hh"

namespace archval::harness
{

CoverageTracker::CoverageTracker(const graph::StateGraph &graph)
    : graph_(graph), covered_(graph.numEdges(), false)
{
}

void
CoverageTracker::addEdge(graph::EdgeId edge, uint32_t instr_count)
{
    if (!covered_[edge]) {
        covered_[edge] = true;
        ++coveredCount_;
    }
    instructions_ += instr_count;
    ++cycles_;
}

void
CoverageTracker::addTrace(const graph::Trace &trace)
{
    for (graph::EdgeId e : trace.edges)
        addEdge(e, graph_.edge(e).instrCount);
}

void
CoverageTracker::samplePoint()
{
    curve_.push_back({instructions_, cycles_, coveredCount_});
}

double
CoverageTracker::fraction() const
{
    return graph_.numEdges()
               ? double(coveredCount_) / double(graph_.numEdges())
               : 0.0;
}

} // namespace archval::harness

/**
 * @file
 * Checkpoint-accelerated batch replay — the perf core of steps 3–4.
 *
 * Tour traces are reset-rooted DFS walks of the state graph, so a
 * batch of them shares long stimulus prefixes. The engine organizes a
 * batch into its prefix tree (by sorting traces lexicographically on
 * forced-cycle content and chaining longest-common-prefix lengths),
 * simulates each shared prefix once per bug set, publishes a
 * value-semantics PpCore snapshot at every planned branch point, and
 * resumes sibling traces from the snapshot instead of from reset.
 * Snapshots live in an LRU cache under a configurable byte budget;
 * replay jobs (trace × BugSet) fan out across a worker pool.
 *
 * Correctness contract: results are byte-identical to playing every
 * trace on a fresh core with VectorPlayer::play, for any worker
 * count and any cache budget. Two mechanisms guarantee it:
 *
 *  - snapshots are bit-exact whole-machine copies (cycle and retire
 *    counters included), so a resumed run is indistinguishable from
 *    an uninterrupted one;
 *  - before resuming trace B from a checkpoint donated by trace A,
 *    the engine verifies that B's stimulus prefix (forced cycles,
 *    consumed fetch-stream words, popped inbox words) equals A's. On
 *    any mismatch it falls back to from-reset replay, so a foreign
 *    checkpoint can cost cycles but never correctness.
 *
 * The checkpoint cache only helps when shared edge prefixes carry
 * identical operand bytes — which the vector generator guarantees by
 * seeding each packet's draws from a hash of the tour-edge prefix
 * (see vecgen::VectorGenerator).
 *
 * A second sharing axis covers the trace × bug-set matrix: every
 * fault effect in rtl::PpCore is strictly guarded by its trigger
 * conjunction, and the core records the first cycle each conjunction
 * held whether or not the bug is enabled (PpCore::bugFirstTrigger).
 * When a batch contains the empty bug set, its block runs first as
 * the donor: a job for (trace, B) whose bugs never triggered on the
 * trace's bug-free run reuses the donor's PlayResult outright — the
 * bugged run is provably bit-identical — and skips simulation
 * entirely. Since the Table 2.1 faults are rare multi-event
 * conjunctions, most bugged replays collapse to copies.
 */

#ifndef ARCHVAL_HARNESS_REPLAY_ENGINE_HH
#define ARCHVAL_HARNESS_REPLAY_ENGINE_HH

#include <cstdint>
#include <vector>

#include "harness/vector_player.hh"

namespace archval::harness
{

/** Engine tuning. */
struct ReplayOptions
{
    /** Worker threads replay jobs concurrently (1 = inline). */
    unsigned numThreads = 1;

    /** Checkpoint-cache byte budget; 0 disables both sharing axes
     *  (cross-trace prefixes and bug-free donor reuse) and every job
     *  replays from reset. */
    size_t checkpointBudgetBytes = 64ull << 20;

    /** Shortest shared prefix worth a checkpoint: below this the
     *  snapshot copy costs more than the cycles it saves. */
    size_t minPrefixCycles = 16;

    /**
     * Early exit for hunt loops: once a job diverges, jobs for later
     * traces (within the same bug set) are skipped and returned with
     * PlayResult::skipped set. The first divergence and every result
     * before it are still byte-identical to the sequential path for
     * any worker count.
     */
    bool stopOnDivergence = false;
};

/** Batch statistics (one playAll run). */
struct ReplayStats
{
    uint64_t jobs = 0;            ///< trace × bug-set jobs in the batch
    uint64_t jobsSkipped = 0;     ///< skipped after a divergence
    uint64_t batchCycles = 0;     ///< forced cycles the batch demands
    uint64_t simulatedCycles = 0; ///< core steps actually executed
    uint64_t cyclesAvoided = 0;   ///< cycles reused instead of stepped
    uint64_t checkpointsPublished = 0;
    uint64_t checkpointHits = 0;     ///< restores from the cache
    uint64_t checkpointMisses = 0;   ///< planned restore evicted/abandoned
    uint64_t verifyFallbacks = 0;    ///< stimulus-prefix mismatch
    /** Jobs whose whole result was reused from the trace's bug-free
     *  donor run because none of their bugs ever triggered on it. */
    uint64_t bugSetCopies = 0;
    uint64_t cacheEvictions = 0;
    size_t peakCacheBytes = 0;

    /** @return fraction of planned restores that hit the cache. */
    double hitRate() const
    {
        uint64_t planned =
            checkpointHits + checkpointMisses + verifyFallbacks;
        return planned ? double(checkpointHits) / double(planned) : 0.0;
    }

    /** @return fraction of demanded forced cycles never stepped. */
    double avoidedFraction() const
    {
        return batchCycles ? double(cyclesAvoided) / double(batchCycles)
                           : 0.0;
    }
};

/**
 * Replays batches of test traces against bug sets with prefix
 * sharing and a worker pool. Reusable; stats() reflects the most
 * recent playAll().
 */
class ReplayEngine
{
  public:
    /** @param config Machine configuration (all cores share it). */
    explicit ReplayEngine(const rtl::PpConfig &config,
                          ReplayOptions options = {});

    /**
     * Play every trace against every bug set.
     * @return results indexed [b * traces.size() + t], each
     * byte-identical to VectorPlayer(config).play(traces[t],
     * bug_sets[b]).
     */
    std::vector<PlayResult>
    playAll(const std::vector<vecgen::TestTrace> &traces,
            const std::vector<rtl::BugSet> &bug_sets);

    /** Single-bug-set convenience overload. */
    std::vector<PlayResult>
    playAll(const std::vector<vecgen::TestTrace> &traces,
            const rtl::BugSet &bugs = {});

    /** @return statistics for the most recent playAll(). Simulation
     *  results are always exact; cache-related counters can vary
     *  with thread timing when evictions occur. */
    const ReplayStats &stats() const { return stats_; }

    /** @return the engine's options. */
    const ReplayOptions &options() const { return options_; }

  private:
    rtl::PpConfig config_;
    ReplayOptions options_;
    ReplayStats stats_;
};

} // namespace archval::harness

#endif // ARCHVAL_HARNESS_REPLAY_ENGINE_HH

/**
 * @file
 * Checkpoint-accelerated batch replay — the perf core of steps 3–4.
 *
 * Tour traces are reset-rooted DFS walks of the state graph, so a
 * batch of them shares long stimulus prefixes. The engine organizes a
 * batch into its prefix tree (by sorting traces lexicographically on
 * forced-cycle content and chaining longest-common-prefix lengths),
 * simulates each shared prefix once per bug set, publishes a
 * value-semantics PpCore snapshot at every planned branch point, and
 * resumes sibling traces from the snapshot instead of from reset.
 * Snapshots live in an LRU cache under a configurable byte budget;
 * replay jobs (trace × BugSet) fan out across a worker pool.
 *
 * Correctness contract: results are byte-identical to playing every
 * trace on a fresh core with VectorPlayer::play, for any worker
 * count and any cache budget. Two mechanisms guarantee it:
 *
 *  - snapshots are bit-exact whole-machine copies (cycle and retire
 *    counters included), so a resumed run is indistinguishable from
 *    an uninterrupted one;
 *  - before resuming trace B from a checkpoint donated by trace A,
 *    the engine verifies that B's stimulus prefix (forced cycles,
 *    consumed fetch-stream words, popped inbox words) equals A's. On
 *    any mismatch it falls back to from-reset replay, so a foreign
 *    checkpoint can cost cycles but never correctness.
 *
 * The checkpoint cache only helps when shared edge prefixes carry
 * identical operand bytes — which the vector generator guarantees by
 * seeding each packet's draws from a hash of the tour-edge prefix
 * (see vecgen::VectorGenerator).
 *
 * A second sharing axis covers the trace × bug-set matrix: every
 * fault effect in rtl::PpCore is strictly guarded by its trigger
 * conjunction, and the core records the first cycle each conjunction
 * held whether or not the bug is enabled (PpCore::bugFirstTrigger).
 * When a batch contains the empty bug set, its block runs first as
 * the donor: a job for (trace, B) whose bugs never triggered on the
 * trace's bug-free run reuses the donor's PlayResult outright — the
 * bugged run is provably bit-identical — and skips simulation
 * entirely. Since the Table 2.1 faults are rare multi-event
 * conjunctions, most bugged replays collapse to copies.
 *
 * The third axis is the tiered in-trace checkpoint scheme, which
 * covers the jobs the first two cannot: (trace, B) jobs whose bugs
 * *did* trigger on the donor run.
 *
 *  - Periodic donor checkpoints: the donor run snapshots the core
 *    every ReplayOptions::checkpointStride cycles. A triggered job
 *    resumes from the greatest donor checkpoint strictly below its
 *    first trigger cycle instead of replaying from reset.
 *  - Cross-bug-set restore: a checkpoint whose cycle lies strictly
 *    below every first-trigger cycle of a bug set is bit-identical
 *    to the state that bugged run would have reached (fault effects
 *    are trigger-guarded; trigger cycles are recorded regardless of
 *    enablement), except for the enabled-bug mask itself — so the
 *    restore re-arms the mask (PpCore::restoreWithBugs) and
 *    non-donor blocks consume the donor block's chain instead of
 *    maintaining chains of their own.
 *  - Disk spill tier: checkpoints LRU-evicted from the byte budget
 *    are serialized into a CRC-checked temp-dir spill file
 *    (support/spill_store) under their own byte cap and faulted back
 *    in on demand. Any I/O, CRC, or decode failure degrades to
 *    from-reset replay — a damaged record can cost cycles, never
 *    correctness.
 */

#ifndef ARCHVAL_HARNESS_REPLAY_ENGINE_HH
#define ARCHVAL_HARNESS_REPLAY_ENGINE_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "harness/vector_player.hh"

namespace archval::harness
{

/**
 * Cross-batch warm cache — the fourth sharing axis, across playAll()
 * calls (and across engines: the cache is shared by handle, so a
 * service session or a hunt loop keeps it alive between requests).
 *
 * Every bug-free donor run deposits an entry keyed by the trace's
 * *entire serialized content* (vecgen::serializeTrace — exact-match
 * lookup, so a foreign trace can never borrow a warm result): the
 * donor PlayResult, the first-trigger cycle of every bug, and the
 * donor's periodic checkpoint chain as serialized core snapshots. A
 * later batch containing the same trace then reuses the warm entry
 * exactly like an in-batch donor block:
 *
 *  - a job whose bugs never triggered on the donor run copies the
 *    donor result outright (zero cycles simulated);
 *  - a job whose bugs did trigger resumes from the greatest warm
 *    checkpoint strictly below its first trigger cycle, with the bug
 *    mask re-armed on restore (PpCore::restoreWithBugs) — the same
 *    validity rule as the in-batch stride tier.
 *
 * Snapshot records are config-fingerprinted; a record that fails to
 * deserialize degrades that job to from-reset replay, never to wrong
 * bytes. Entries are immutable once inserted and evicted whole, LRU,
 * under a byte budget. All operations are thread-safe.
 */
class ReplayWarmCache
{
  public:
    /** @param budget_bytes Whole-cache LRU byte budget.
     *  @param chain_cap_bytes Per-entry checkpoint-chain byte cap —
     *  populating runs thin their chain logarithmically (drop every
     *  other link, double the link stride) to stay under it, so one
     *  long trace cannot monopolize the cache with snapshots. */
    explicit ReplayWarmCache(size_t budget_bytes = 256ull << 20,
                             size_t chain_cap_bytes = 32ull << 20)
        : budget_(budget_bytes), chainCap_(chain_cap_bytes)
    {
    }

    /** Per-entry chain byte cap (see constructor). */
    size_t chainBytesCap() const { return chainCap_; }

    /** One periodic donor checkpoint (serialized core snapshot). */
    struct ChainLink
    {
        uint64_t cycle = 0;
        std::vector<uint8_t> snapshot;
    };

    /** One warm entry; immutable once inserted. */
    struct Entry
    {
        std::string key; ///< full serialized trace content
        PlayResult donorResult;
        /** First cycle each bug's trigger conjunction held on the
         *  bug-free run (UINT64_MAX = never). */
        std::array<uint64_t, rtl::numBugs> triggers{};
        std::vector<ChainLink> chain; ///< increasing cycle order
        size_t bytes = 0;             ///< filled by insert()
    };

    /** Cache observability (monotonic over the cache's lifetime). */
    struct Stats
    {
        uint64_t lookups = 0;
        uint64_t hits = 0;
        uint64_t inserts = 0;
        uint64_t evictions = 0;
        size_t bytes = 0;
        size_t entries = 0;
    };

    /** @return the entry whose key equals @p key, or null. */
    std::shared_ptr<const Entry> find(const std::string &key);

    /** Insert @p entry (an existing entry with the same key wins;
     *  LRU entries are evicted past the byte budget; an entry alone
     *  exceeding the budget is dropped). */
    void insert(std::shared_ptr<Entry> entry);

    /** @return a point-in-time snapshot of every entry (unordered).
     *  Entries are immutable, so the snapshot stays valid however
     *  long the caller holds it — this is the persistence walk. */
    std::vector<std::shared_ptr<const Entry>> entries() const;

    /**
     * @name Entry persistence
     * One warm entry to/from a self-contained byte record (for the
     * service's disk-backed session store). The record carries its
     * own version stamp and the build's bug count; deserializeEntry
     * returns null on any structural mismatch — a stale or foreign
     * record restores as "not warm", never as wrong bytes. Chain
     * snapshots are opaque here: they stay config-fingerprinted and
     * are re-validated by PpCore::deserializeSnapshot at use time.
     * @{
     */
    static std::vector<uint8_t> serializeEntry(const Entry &entry);
    static std::shared_ptr<Entry>
    deserializeEntry(const uint8_t *data, size_t size);
    /** @} */

    Stats stats() const;

  private:
    struct Slot
    {
        std::shared_ptr<Entry> entry;
        uint64_t lastUse = 0;
    };

    mutable std::mutex mutex_;
    size_t budget_;
    size_t chainCap_;
    size_t bytes_ = 0;
    uint64_t clock_ = 0;
    uint64_t lookups_ = 0;
    uint64_t hits_ = 0;
    uint64_t inserts_ = 0;
    uint64_t evictions_ = 0;
    std::unordered_map<std::string, Slot> entries_;
};

/** Engine tuning. */
struct ReplayOptions
{
    /** Worker threads replay jobs concurrently (1 = inline). */
    unsigned numThreads = 1;

    /** Checkpoint-cache byte budget; 0 disables both sharing axes
     *  (cross-trace prefixes and bug-free donor reuse) and every job
     *  replays from reset. */
    size_t checkpointBudgetBytes = 64ull << 20;

    /** Shortest shared prefix worth a checkpoint: below this the
     *  snapshot copy costs more than the cycles it saves. */
    size_t minPrefixCycles = 16;

    /**
     * Cycle stride of the periodic in-trace donor checkpoints
     * (0 disables the tier). Only meaningful when the batch has a
     * bug-free donor block: the donor run publishes a snapshot every
     * stride cycles, and a (trace, bug) job whose bugs triggered on
     * the donor run resumes from the greatest checkpoint strictly
     * below its first trigger cycle, with the bug mask re-armed at
     * restore. While the tier is active, non-donor blocks consume
     * the donor chain instead of maintaining their own prefix
     * chains.
     */
    size_t checkpointStride = 1024;

    /**
     * Byte cap for the disk spill tier (0 disables it). Checkpoints
     * LRU-evicted from the in-memory budget are serialized into a
     * CRC-checked temp file and faulted back in on demand; the cap
     * bounds total bytes ever written (the file is append-only and
     * removed when playAll returns). Spill failures of any kind
     * degrade to from-reset replay.
     */
    size_t spillBudgetBytes = 0;

    /** Spill-file directory; empty picks $TMPDIR or /tmp. An
     *  unusable directory disables the spill tier. */
    std::string spillDir;

    /** Spill-tier fault injection (testing): damage every spilled
     *  record so read-back must take the degradation path. */
    enum class SpillFault
    {
        None,       ///< normal operation
        CorruptCrc, ///< flip a payload byte after each write
        Truncate,   ///< cut the file at each record after writing
    };
    SpillFault spillFault = SpillFault::None;

    /**
     * Early exit for hunt loops: once a job diverges, jobs for later
     * traces (within the same bug set) are skipped and returned with
     * PlayResult::skipped set. The first divergence and every result
     * before it are still byte-identical to the sequential path for
     * any worker count.
     */
    bool stopOnDivergence = false;

    /**
     * Cross-batch warm cache (see ReplayWarmCache). When set, jobs
     * consult it before simulating and bug-free donor runs populate
     * it, so a later batch over the same traces skips the donor
     * simulation entirely. Shared: any number of engines (and
     * threads) may hold the same cache.
     */
    std::shared_ptr<ReplayWarmCache> warmCache;

    /**
     * Cooperative cancellation: when non-null and it reads true,
     * jobs not yet started are skipped (PlayResult::skipped) and
     * playAll returns early. Results produced before the flag was
     * observed are still exact. The flag is only read, never written.
     */
    const std::atomic<bool> *cancelFlag = nullptr;
};

/** Batch statistics (one playAll run). */
struct ReplayStats
{
    uint64_t jobs = 0;            ///< trace × bug-set jobs in the batch
    uint64_t jobsSkipped = 0;     ///< skipped after a divergence
    uint64_t batchCycles = 0;     ///< forced cycles the batch demands
    uint64_t simulatedCycles = 0; ///< core steps actually executed
    uint64_t cyclesAvoided = 0;   ///< cycles reused instead of stepped
    uint64_t checkpointsPublished = 0;
    uint64_t checkpointHits = 0;     ///< restores from the cache
    uint64_t checkpointMisses = 0;   ///< planned restore evicted/abandoned
    uint64_t verifyFallbacks = 0;    ///< stimulus-prefix mismatch
    /** Jobs whose whole result was reused from the trace's bug-free
     *  donor run because none of their bugs ever triggered on it. */
    uint64_t bugSetCopies = 0;
    uint64_t cacheEvictions = 0;
    size_t peakCacheBytes = 0;

    /** @name Tiered in-trace checkpointing @{ */
    uint64_t strideCheckpoints = 0; ///< periodic donor checkpoints
    uint64_t strideHits = 0;        ///< triggered jobs resumed from one
    uint64_t strideResumeCycles = 0; ///< cycles skipped by those resumes
    /** Non-donor jobs whose bug set triggered on the donor run (the
     *  jobs only the stride tier can accelerate). */
    uint64_t triggeredJobs = 0;
    uint64_t triggeredJobCycles = 0; ///< forced cycles those jobs demand
    /** Cycles standing between reset and the bug set's first trigger,
     *  summed over triggered jobs (capped at the trace length). This
     *  is the pool the stride tier can address: everything past the
     *  trigger is the diverged run itself and must be re-stepped by
     *  any scheme. */
    uint64_t triggeredLeadCycles = 0;
    /** @} */

    /** @name Disk spill tier @{ */
    uint64_t spillWrites = 0;    ///< checkpoints evicted to disk
    uint64_t spillReads = 0;     ///< spill-record read attempts
    uint64_t spillBytes = 0;     ///< payload bytes written to the file
    /** Spill read/decode failures; each degraded a planned restore
     *  to a miss (from-reset or nearest earlier checkpoint). */
    uint64_t spillFallbacks = 0;
    /** @} */

    /** @name Cross-batch warm cache (ReplayWarmCache) @{ */
    uint64_t warmLookups = 0; ///< traces looked up in the warm cache
    uint64_t warmHits = 0;    ///< traces found warm
    /** Jobs whose whole result was copied from a warm donor entry
     *  (zero cycles simulated). */
    uint64_t warmCopies = 0;
    uint64_t warmChainHits = 0;     ///< jobs resumed from a warm link
    uint64_t warmResumeCycles = 0;  ///< cycles those resumes skipped
    uint64_t warmInserts = 0;       ///< donor entries published
    /** @} */

    /** @return fraction of planned restores that hit the cache. */
    double hitRate() const
    {
        uint64_t planned =
            checkpointHits + checkpointMisses + verifyFallbacks;
        return planned ? double(checkpointHits) / double(planned) : 0.0;
    }

    /** @return fraction of demanded forced cycles never stepped. */
    double avoidedFraction() const
    {
        return batchCycles ? double(cyclesAvoided) / double(batchCycles)
                           : 0.0;
    }

    /** @return fraction of the triggered jobs' reset-to-trigger lead
     *  cycles skipped by resuming from in-trace donor checkpoints
     *  (the bench gate metric). The lead is the avoidable pool — a
     *  checkpoint substitutes for re-stepping the bug-free prefix,
     *  never for the diverged suffix — so this is avoided/avoidable,
     *  the Table 3.3 "time to re-reach a bug" ratio. */
    double strideSavings() const
    {
        return triggeredLeadCycles
                   ? double(strideResumeCycles) /
                         double(triggeredLeadCycles)
                   : 0.0;
    }
};

/**
 * Replays batches of test traces against bug sets with prefix
 * sharing and a worker pool. Reusable; stats() reflects the most
 * recent playAll().
 */
class ReplayEngine
{
  public:
    /** @param config Machine configuration (all cores share it). */
    explicit ReplayEngine(const rtl::PpConfig &config,
                          ReplayOptions options = {});

    /**
     * Play every trace against every bug set.
     * @return results indexed [b * traces.size() + t], each
     * byte-identical to VectorPlayer(config).play(traces[t],
     * bug_sets[b]).
     */
    std::vector<PlayResult>
    playAll(const std::vector<vecgen::TestTrace> &traces,
            const std::vector<rtl::BugSet> &bug_sets);

    /** Single-bug-set convenience overload. */
    std::vector<PlayResult>
    playAll(const std::vector<vecgen::TestTrace> &traces,
            const rtl::BugSet &bugs = {});

    /** @return statistics for the most recent playAll(). Simulation
     *  results are always exact; cache-related counters can vary
     *  with thread timing when evictions occur. */
    const ReplayStats &stats() const { return stats_; }

    /** @return the engine's options. */
    const ReplayOptions &options() const { return options_; }

  private:
    rtl::PpConfig config_;
    ReplayOptions options_;
    ReplayStats stats_;
};

} // namespace archval::harness

#endif // ARCHVAL_HARNESS_REPLAY_ENGINE_HH

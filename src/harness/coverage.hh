/**
 * @file
 * Arc-coverage accounting over a state graph: the metric the paper's
 * methodology maximizes per simulation cycle.
 */

#ifndef ARCHVAL_HARNESS_COVERAGE_HH
#define ARCHVAL_HARNESS_COVERAGE_HH

#include <cstdint>
#include <vector>

#include "graph/state_graph.hh"
#include "graph/tour.hh"

namespace archval::harness
{

/** One point of a coverage-vs-cost curve. */
struct CoveragePoint
{
    uint64_t instructions = 0; ///< cumulative instructions simulated
    uint64_t cycles = 0;       ///< cumulative cycles simulated
    uint64_t coveredEdges = 0; ///< distinct arcs exercised so far
};

/**
 * Tracks which arcs of a graph have been exercised and samples a
 * coverage curve.
 */
class CoverageTracker
{
  public:
    /** @param graph Graph whose arcs are tracked (must outlive). */
    explicit CoverageTracker(const graph::StateGraph &graph);

    /** Record the traversal of one edge. */
    void addEdge(graph::EdgeId edge, uint32_t instr_count);

    /** Record a whole walk. */
    void addTrace(const graph::Trace &trace);

    /** Sample the current totals onto the curve. */
    void samplePoint();

    /**
     * Fold @p other into this tracker: the covered-edge sets are
     * OR-ed and the instruction/cycle totals summed. Both trackers
     * must observe the same graph. Sampled curves are per-tracker
     * and are not merged. Used to combine per-worker trackers.
     */
    void merge(const CoverageTracker &other);

    /** Clear all coverage, totals and the sampled curve. */
    void reset();

    /** @return distinct edges covered. */
    uint64_t coveredEdges() const { return coveredCount_; }

    /** @return true when @p edge has been exercised. */
    bool covered(graph::EdgeId edge) const { return covered_[edge]; }

    /** @return covered fraction in [0,1]. */
    double fraction() const;

    /** @return cumulative instructions over all recorded edges. */
    uint64_t instructions() const { return instructions_; }

    /** @return cumulative edge traversals (cycles). */
    uint64_t cycles() const { return cycles_; }

    /** @return the sampled curve. */
    const std::vector<CoveragePoint> &curve() const { return curve_; }

  private:
    const graph::StateGraph &graph_;
    std::vector<bool> covered_;
    uint64_t coveredCount_ = 0;
    uint64_t instructions_ = 0;
    uint64_t cycles_ = 0;
    std::vector<CoveragePoint> curve_;
};

} // namespace archval::harness

#endif // ARCHVAL_HARNESS_COVERAGE_HH

/**
 * @file
 * Simulation framework — step 4 of the methodology (Figure 3.1).
 *
 * Plays generated test traces on the RTL core (vector mode, signals
 * forced per cycle) and runs the executable specification (the
 * instruction-level simulator in stream mode) on the retired stream,
 * then compares architectural state. A bug is "found" when the two
 * disagree.
 *
 * playChecked() additionally verifies lockstep: after every forced
 * cycle the core's control state must equal the state-graph node the
 * tour intended to be in — the property that makes transition-tour
 * coverage claims meaningful.
 */

#ifndef ARCHVAL_HARNESS_VECTOR_PLAYER_HH
#define ARCHVAL_HARNESS_VECTOR_PLAYER_HH

#include <string>

#include "graph/state_graph.hh"
#include "graph/tour.hh"
#include "rtl/pp_core.hh"
#include "rtl/pp_fsm_model.hh"
#include "vecgen/vector_gen.hh"

namespace archval::harness
{

/** Outcome of playing one test trace. */
struct PlayResult
{
    bool diverged = false;   ///< implementation != specification
    std::string diff;        ///< first architectural difference
    uint64_t cycles = 0;     ///< cycles simulated (incl. drain)
    uint64_t instructions = 0; ///< instructions retired by the core
    uint64_t lockstepErrors = 0; ///< control-state mismatches
    bool drained = false;    ///< pipe empty when the run ended
    /** Not played: a ReplayEngine batch with stopOnDivergence set
     *  skips every job after the first divergence. */
    bool skipped = false;
};

/**
 * Plays vector traces against the specification.
 */
class VectorPlayer
{
  public:
    /** @param config Machine configuration (all models share it). */
    explicit VectorPlayer(const rtl::PpConfig &config)
        : config_(config)
    {
    }

    /**
     * Play @p trace on a fresh core with @p bugs injected; compare
     * against the stream specification.
     */
    PlayResult play(const vecgen::TestTrace &trace,
                    const rtl::BugSet &bugs = {}) const;

    /**
     * Like play(), and also checks cycle-by-cycle that the core's
     * control state follows the tour's intended path through
     * @p graph.
     */
    PlayResult playChecked(const rtl::PpFsmModel &model,
                           const graph::StateGraph &graph,
                           const graph::Trace &tour,
                           const vecgen::TestTrace &trace,
                           const rtl::BugSet &bugs = {}) const;

    /** @return the drain stimulus used after a trace's last cycle. */
    static rtl::ForcedSignals drainSignals();

    /** @return number of drain cycles for a given configuration. */
    static unsigned drainLength(const rtl::PpConfig &config);

    /**
     * @name Shared trace-driving primitives
     * One driver backs play(), playChecked() and the batch
     * ReplayEngine, so bug injection, forcing and draining cannot
     * drift apart between the sequential and checkpointed paths.
     * @{
     */

    /** Lockstep-check context for drive() (playChecked's extra). */
    struct LockstepSpec
    {
        const rtl::PpFsmModel *model = nullptr;
        const graph::StateGraph *graph = nullptr;
        const graph::Trace *tour = nullptr;
    };

    /** Load @p trace's stream/inbox into @p core and inject @p bugs. */
    static void primeCore(rtl::PpCore &core,
                          const vecgen::TestTrace &trace,
                          const rtl::BugSet &bugs);

    /**
     * Force-and-step @p core through @p trace's cycles
     * [@p first_cycle, @p last_cycle).
     * @return lockstep mismatches (0 when @p lockstep is null).
     */
    static uint64_t drive(rtl::PpCore &core,
                          const vecgen::TestTrace &trace,
                          size_t first_cycle, size_t last_cycle,
                          const LockstepSpec *lockstep = nullptr);

    /**
     * Drain @p core, run the executable specification on @p trace's
     * retired stream and compare architectural state.
     */
    static PlayResult finish(const rtl::PpConfig &config,
                             rtl::PpCore &core,
                             const vecgen::TestTrace &trace);

    /** @} */

  private:
    rtl::PpConfig config_;
};

} // namespace archval::harness

#endif // ARCHVAL_HARNESS_VECTOR_PLAYER_HH

#include "baselines.hh"

#include "pp/assembler.hh"
#include "pp/ref_sim.hh"
#include "rtl/pp_core.hh"
#include "support/status.hh"

namespace archval::harness
{

RandomWalker::RandomWalker(const graph::StateGraph &graph, uint64_t seed)
    : graph_(graph), rng_(seed)
{
}

graph::Trace
RandomWalker::walk(uint64_t max_instructions, uint64_t max_edges)
{
    graph::Trace trace;
    graph::StateId state = graph_.resetState();
    while (trace.instructions < max_instructions &&
           trace.edges.size() < max_edges) {
        const auto &out = graph_.outEdges(state);
        if (out.empty())
            break;
        graph::EdgeId e = out[rng_.index(out.size())];
        trace.edges.push_back(e);
        trace.instructions += graph_.edge(e).instrCount;
        state = graph_.edge(e).dst;
    }
    return trace;
}

BiasedWalker::BiasedWalker(const rtl::PpFsmModel &model,
                           const graph::StateGraph &graph,
                           uint64_t seed, const EventBias &bias)
    : model_(model), graph_(graph), rng_(seed), bias_(bias)
{
    if (!graph.statesRetained())
        fatal("BiasedWalker needs retained states");
    stateIds_.reserve(graph.numStates());
    for (graph::StateId id = 0; id < graph.numStates(); ++id)
        stateIds_.emplace(graph.packedState(id), id);
}

graph::Trace
BiasedWalker::walk(uint64_t max_instructions, uint64_t max_edges)
{
    using rtl::PpChoiceVar;
    auto bernoulli = [&](double p) -> uint32_t {
        return rng_.below(1'000'000) < uint64_t(p * 1'000'000) ? 1
                                                               : 0;
    };

    const auto &vars = model_.choiceVars();
    const unsigned num_classes = vars[0].cardinality;
    const uint32_t align_card =
        vars[static_cast<size_t>(PpChoiceVar::TargetAlign)]
            .cardinality;

    graph::Trace trace;
    graph::StateId at = graph_.resetState();

    while (trace.instructions < max_instructions &&
           trace.edges.size() < max_edges) {
        // Sample every event at its natural rate; the model then
        // zeroes whatever the control did not examine this cycle.
        std::array<uint32_t, rtl::numPpChoiceVars> values{};
        uint32_t cls;
        if (bernoulli(bias_.aluShare)) {
            cls = 0; // ALU
        } else {
            cls = 1 + static_cast<uint32_t>(
                          rng_.index(num_classes - 1));
        }
        values[static_cast<size_t>(PpChoiceVar::FetchClass)] = cls;
        values[static_cast<size_t>(PpChoiceVar::Dual)] =
            bernoulli(bias_.dual);
        values[static_cast<size_t>(PpChoiceVar::IHit)] =
            bernoulli(bias_.iHit);
        values[static_cast<size_t>(PpChoiceVar::DHit)] =
            bernoulli(bias_.dHit);
        values[static_cast<size_t>(PpChoiceVar::Dirty)] =
            bernoulli(bias_.dirty);
        values[static_cast<size_t>(PpChoiceVar::SameLine)] =
            bernoulli(bias_.sameLine);
        values[static_cast<size_t>(PpChoiceVar::InboxReady)] =
            bernoulli(bias_.inboxReady);
        values[static_cast<size_t>(PpChoiceVar::OutboxReady)] =
            bernoulli(bias_.outboxReady);
        values[static_cast<size_t>(PpChoiceVar::MemReply)] =
            bernoulli(bias_.memReply);
        values[static_cast<size_t>(PpChoiceVar::BranchTaken)] =
            bernoulli(bias_.branchTaken);
        values[static_cast<size_t>(PpChoiceVar::TargetAlign)] =
            static_cast<uint32_t>(rng_.index(align_card));

        const BitVec &packed = graph_.packedState(at);
        fsm::Choice choice = model_.canonicalize(packed, values);
        auto transition = model_.next(packed, choice);
        if (!transition)
            panic("biased walker produced an illegal tuple");

        auto dst_it = stateIds_.find(transition->next);
        if (dst_it == stateIds_.end())
            panic("biased walker left the enumerated graph");
        graph::StateId dst = dst_it->second;

        // Account the (src, dst) arc (FirstCondition graphs record
        // one edge per destination).
        graph::EdgeId matched = graph::invalidState;
        for (graph::EdgeId e : graph_.outEdges(at)) {
            if (graph_.edge(e).dst == dst) {
                matched = e;
                break;
            }
        }
        if (matched == graph::invalidState)
            panic("biased walker used an unrecorded arc");
        trace.edges.push_back(matched);
        // Account the recorded arc's own instruction count so the
        // trace replays consistently through the vector generator.
        trace.instructions += graph_.edge(matched).instrCount;
        at = dst;
    }
    return trace;
}

const std::vector<DirectedTest> &
directedSuite()
{
    static const std::vector<DirectedTest> suite = {
        {"alu_smoke", "basic ALU operations",
         R"(
            addi r1, r0, 100
            addi r2, r0, 23
            add r3, r1, r2
            sub r4, r1, r2
            and r5, r1, r2
            or r6, r1, r2
            xor r7, r1, r2
            slt r8, r2, r1
            sll r9, r1, 3
            srl r10, r1, 2
            halt
         )",
         {}, false},
        {"load_store_basic", "store then load, same and other lines",
         R"(
            addi r1, r0, 0x11
            addi r2, r0, 0x22
            sw r1, 64(r0)
            sw r2, 512(r0)
            lw r3, 64(r0)
            lw r4, 512(r0)
            add r5, r3, r4
            halt
         )",
         {}, false},
        {"store_load_conflict", "split-store conflict: load follows "
                                "store to the same line immediately",
         R"(
            addi r1, r0, 0xaa
            sw r1, 128(r0)
            lw r2, 128(r0)
            addi r1, r0, 0xbb
            sw r1, 128(r0)
            sw r1, 132(r0)
            lw r3, 132(r0)
            halt
         )",
         {}, false},
        {"cache_thrash", "walk many lines to force misses, "
                         "evictions and writebacks",
         R"(
            addi r1, r0, 1
            sw r1, 0(r0)
            sw r1, 32(r0)
            sw r1, 64(r0)
            sw r1, 96(r0)
            sw r1, 128(r0)
            sw r1, 160(r0)
            sw r1, 192(r0)
            sw r1, 224(r0)
            sw r1, 256(r0)
            sw r1, 288(r0)
            sw r1, 320(r0)
            sw r1, 352(r0)
            lw r2, 0(r0)
            lw r3, 32(r0)
            lw r4, 64(r0)
            lw r5, 96(r0)
            lw r6, 128(r0)
            lw r7, 160(r0)
            lw r8, 192(r0)
            lw r9, 224(r0)
            halt
         )",
         {}, false},
        {"switch_send_burst", "inbox/outbox traffic with stalls",
         R"(
            switch r1
            switch r2
            add r3, r1, r2
            send r3
            send r1
            send r2
            send r3
            send r1
            send r2
            switch r4
            send r4
            halt
         )",
         {3, 4, 5}, false},
        {"mixed_mem_comm", "interleaved memory and communication",
         R"(
            switch r1
            sw r1, 64(r0)
            lw r2, 64(r0)
            send r2
            switch r3
            sw r3, 320(r0)
            lw r4, 320(r0)
            send r4
            halt
         )",
         {0x1234, 0x5678}, false},
        {"branch_loop", "loop with scheduled branch sources",
         R"(
            addi r1, r0, 6
            addi r2, r0, 0
         loop:
            add r2, r2, r1
            addi r1, r1, -1
            nop
            nop
            bne r1, r0, loop
            sw r2, 64(r0)
            halt
         )",
         {}, true},
        {"store_miss_dirty", "store misses onto dirty victims",
         R"(
            addi r1, r0, 7
            sw r1, 0(r0)
            sw r1, 128(r0)
            sw r1, 256(r0)
            sw r1, 384(r0)
            lw r2, 0(r0)
            lw r3, 128(r0)
            halt
         )",
         {}, false},
    };
    return suite;
}

std::vector<DirectedResult>
runDirectedSuite(const rtl::PpConfig &config, const rtl::BugSet &bugs)
{
    std::vector<DirectedResult> results;
    for (const DirectedTest &test : directedSuite()) {
        DirectedResult result;
        result.name = test.name;
        if (test.needsBranches && !config.modelBranches) {
            results.push_back(result);
            continue;
        }

        auto assembled = pp::assemble(test.source);
        if (!assembled.ok())
            fatal("directed test '" + test.name +
                  "' does not assemble: " + assembled.errorMessage());
        const auto &program = assembled.value();

        pp::RefSim ref(config.machine);
        ref.loadProgram(program);
        ref.setInbox(test.inbox);
        ref.run();

        rtl::PpCore core(config, rtl::CoreMode::Program);
        core.loadProgram(program);
        core.setInbox(test.inbox);
        for (size_t b = 0; b < rtl::numBugs; ++b) {
            if (bugs.test(b))
                core.setBug(static_cast<rtl::BugId>(b), true);
        }
        core.run(500'000);

        result.ran = true;
        result.cycles = core.cycles();
        result.instructions = core.instructionsRetired();
        result.diff = ref.archState().diff(core.archState());
        result.diverged = !result.diff.empty();
        results.push_back(result);
    }
    return results;
}

} // namespace archval::harness

/**
 * @file
 * The two baselines the paper argues against (Section 1): biased
 * random stimulus and hand-written directed tests.
 *
 *  - RandomWalker produces reset-rooted random walks over the
 *    enumerated state graph (equivalently: legal random stimulus at
 *    the control interfaces). Its walks feed the same vector
 *    generator and player as tours, so coverage and bug-detection
 *    latency are compared apples to apples.
 *  - The directed suite is a set of hand-written PP assembly
 *    programs of the kind a test writer would produce, run on the
 *    core in program mode against the reference simulator.
 */

#ifndef ARCHVAL_HARNESS_BASELINES_HH
#define ARCHVAL_HARNESS_BASELINES_HH

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/state_graph.hh"
#include "graph/tour.hh"
#include "rtl/faults.hh"
#include "rtl/pp_config.hh"
#include "rtl/pp_fsm_model.hh"
#include "support/rng.hh"

namespace archval::harness
{

/**
 * Uniform random walk over the out-edges of a state graph.
 */
class RandomWalker
{
  public:
    /**
     * @param graph Graph to walk (must outlive the walker).
     * @param seed Determines the whole walk sequence.
     */
    RandomWalker(const graph::StateGraph &graph, uint64_t seed);

    /**
     * Produce a reset-rooted random walk.
     *
     * @param max_instructions Stop once this many instructions have
     *        been generated (at least one edge is always taken).
     * @param max_edges Hard cycle bound (guards instruction-free
     *        livelock regions).
     */
    graph::Trace walk(uint64_t max_instructions,
                      uint64_t max_edges = 1'000'000);

  private:
    const graph::StateGraph &graph_;
    Rng rng_;
};

/**
 * Naturalistic event probabilities for the biased-random baseline —
 * what a 1995-style random test generator would produce: mostly
 * cache hits, mostly-ready interfaces, ALU-heavy instruction mixes.
 * Under these the paper's corner-case conjunctions are genuinely
 * improbable.
 */
struct EventBias
{
    double iHit = 0.99;        ///< I-cache hit probability
    double dHit = 0.97;        ///< D-cache hit probability
    double dirty = 0.15;       ///< victim-dirty probability
    double sameLine = 0.03;    ///< conflict line-match probability
    double inboxReady = 0.98;  ///< Inbox ready probability
    double outboxReady = 0.98; ///< Outbox ready probability
    double memReply = 0.85;    ///< reply-beat probability per cycle
    double dual = 0.50;        ///< second-slot issue probability
    double branchTaken = 0.30; ///< taken-branch probability
    double aluShare = 0.65;    ///< ALU share of the instruction mix
};

/**
 * Random walk driven by biased per-event draws — the paper's
 * "randomly-generated tests" baseline. Unlike RandomWalker, which
 * picks uniformly among graph edges (and therefore hits improbable
 * corners with probability ~1/outdegree), this walker never looks at
 * the graph's structure to choose: it samples each interface event
 * at its natural rate and only uses the graph to account coverage.
 */
class BiasedWalker
{
  public:
    /**
     * @param model Enumerated PP model (canonicalizes samples).
     * @param graph The model's state graph (coverage accounting).
     * @param seed Determines the whole walk sequence.
     * @param bias Event probabilities.
     */
    BiasedWalker(const rtl::PpFsmModel &model,
                 const graph::StateGraph &graph, uint64_t seed,
                 const EventBias &bias = {});

    /** Produce a reset-rooted biased-random walk. */
    graph::Trace walk(uint64_t max_instructions,
                      uint64_t max_edges = 1'000'000);

  private:
    const rtl::PpFsmModel &model_;
    const graph::StateGraph &graph_;
    Rng rng_;
    EventBias bias_;
    /** packed state -> graph id (for edge accounting). */
    std::unordered_map<BitVec, graph::StateId, BitVecHash> stateIds_;
};

/** One hand-written directed test. */
struct DirectedTest
{
    std::string name;
    std::string description;
    std::string source;           ///< PP assembly
    std::deque<uint32_t> inbox;   ///< Inbox preload
    bool needsBranches = false;   ///< requires modelBranches
};

/** @return the built-in directed test suite. */
const std::vector<DirectedTest> &directedSuite();

/** Outcome of one directed test run. */
struct DirectedResult
{
    std::string name;
    bool ran = false;      ///< skipped when config lacks a feature
    bool diverged = false; ///< implementation != specification
    std::string diff;
    uint64_t cycles = 0;
    uint64_t instructions = 0;
};

/**
 * Run the directed suite on the core (program mode) with @p bugs
 * injected, comparing against the reference simulator.
 */
std::vector<DirectedResult> runDirectedSuite(const rtl::PpConfig &config,
                                             const rtl::BugSet &bugs);

} // namespace archval::harness

#endif // ARCHVAL_HARNESS_BASELINES_HH

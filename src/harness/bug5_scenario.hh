/**
 * @file
 * Hand-built reproduction of PP bug #5's timing diagrams (paper
 * Figures 2.2 and 2.3): a load that misses in the D-cache, followed
 * by another load in the pipe, with the critical-word-first restart.
 * A glitch on the Membus-valid signal overwrites the critical word;
 * normally the refill logic's second write masks it (Figure 2.2),
 * but an external stall landing in the window of opportunity
 * suppresses the rewrite and garbage reaches the register file
 * (Figure 2.3).
 */

#ifndef ARCHVAL_HARNESS_BUG5_SCENARIO_HH
#define ARCHVAL_HARNESS_BUG5_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/pp_config.hh"

namespace archval::harness
{

/** Outcome of one bug-5 scenario run. */
struct Bug5Outcome
{
    std::vector<std::string> waveform; ///< per-cycle wave lines
    uint32_t loadedValue = 0;          ///< value left in the register
    uint32_t expectedValue = 0;        ///< architecturally correct
    bool corrupted = false;            ///< loadedValue != expected
};

/**
 * Run the scenario.
 *
 * @param config Machine configuration.
 * @param external_stall Deliver the external stall inside the window
 *        of opportunity (Figure 2.3) or not (Figure 2.2).
 * @param bug_enabled Inject bug #5 or run the fixed design.
 */
Bug5Outcome runBug5Scenario(const rtl::PpConfig &config,
                            bool external_stall, bool bug_enabled);

} // namespace archval::harness

#endif // ARCHVAL_HARNESS_BUG5_SCENARIO_HH

#include "replay_engine.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <numeric>
#include <thread>

#include "support/flight_recorder.hh"
#include "support/spill_store.hh"
#include "support/status.hh"
#include "support/strings.hh"
#include "support/telemetry.hh"
#include "vecgen/trace_io.hh"

namespace archval::harness
{

namespace
{

/** One replay job: a (trace, bug set) pair plus its plan. */
struct Job
{
    size_t trace = 0;        ///< index into the batch
    size_t bugSet = 0;       ///< index into the bug-set list
    int restoreSlot = -1;    ///< checkpoint to resume from
    int publishSlot = -1;    ///< checkpoint this job must produce
    size_t publishDepth = 0; ///< absolute cycle of the publish
};

/** Plan-time record of one checkpoint. */
struct SlotPlan
{
    size_t donorTrace = 0;
    size_t depth = 0;
    unsigned consumers = 0;
};

/** @return length of the common forced-cycle prefix of two traces. */
size_t
commonPrefix(const std::vector<rtl::ForcedSignals> &a,
             const std::vector<rtl::ForcedSignals> &b)
{
    size_t n = std::min(a.size(), b.size());
    size_t i = 0;
    while (i < n && a[i] == b[i])
        ++i;
    return i;
}

/**
 * Tiered runtime checkpoint cache.
 *
 * Tier 1 is memory under the byte budget; tier 2 is the CRC-checked
 * disk spill file. Entries come in two kinds: *plan slots* (the
 * prefix-tree checkpoints planned before execution, with exact
 * consumer counts) and *stride entries* (periodic donor checkpoints
 * added at runtime, shared read-only by every non-donor bug set and
 * dropped when their trace's last consumer finishes). Eviction is
 * LRU across both kinds; a victim is serialized to the spill store
 * when it fits the spill cap, dropped otherwise. Faulting a spilled
 * entry back in re-reads and CRC-checks the record; any failure
 * marks the entry dropped and the caller degrades to an earlier
 * checkpoint or from-reset replay.
 *
 * One mutex guards everything — publishes, consumes, and spill I/O
 * are rare next to the simulation they save.
 */
class CheckpointCache
{
  public:
    CheckpointCache(const rtl::PpConfig &config,
                    const std::vector<SlotPlan> &plans, size_t budget,
                    SpillStore *spill,
                    ReplayOptions::SpillFault fault)
        : config_(config), budget_(budget), spill_(spill),
          fault_(fault)
    {
        slots_.resize(plans.size());
        for (size_t i = 0; i < plans.size(); ++i)
            slots_[i].remaining = plans[i].consumers;
    }

    /** Store @p snap for plan slot @p slot (or drop it). */
    void publish(size_t slot, rtl::PpCore::Snapshot snap)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Slot &s = slots_[slot];
        if (s.remaining == 0)
            s.state = State::Dropped;
        else
            insert(s, std::move(snap));
        if (s.state != State::Dropped)
            ++published_;
        cv_.notify_all();
    }

    /** The producer will never publish @p slot (job skipped). */
    void abandon(size_t slot)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (slots_[slot].state == State::Pending)
            slots_[slot].state = State::Dropped;
        cv_.notify_all();
    }

    /**
     * Block until plan slot @p slot resolves; @return its snapshot,
     * or an invalid one when it was dropped, evicted past the spill
     * cap, or its spill record came back damaged. Decrements the
     * planned-consumer count (the last consumer frees the entry).
     */
    rtl::PpCore::Snapshot consume(size_t slot)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Slot &s = slots_[slot];
        cv_.wait(lock, [&] { return s.state != State::Pending; });
        rtl::PpCore::Snapshot out = materialize(s);
        if (--s.remaining == 0)
            freeSlot(s);
        return out;
    }

    /** Drop a consumer claim without waiting (job skipped). */
    void release(size_t slot)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Slot &s = slots_[slot];
        if (--s.remaining == 0)
            freeSlot(s);
    }

    /** Add a periodic donor checkpoint. @return its entry id. */
    size_t addStride(rtl::PpCore::Snapshot snap)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        slots_.emplace_back();
        Slot &s = slots_.back();
        s.stride = true;
        insert(s, std::move(snap));
        ++strideCheckpoints_;
        return slots_.size() - 1;
    }

    /**
     * Fetch stride entry @p id without consuming it (the donor chain
     * is shared by every non-donor bug set). Stride entries are
     * never pending — the donor published the whole chain before its
     * result became visible.
     */
    rtl::PpCore::Snapshot fetchStride(size_t id)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return materialize(slots_[id]);
    }

    /** Free a trace's stride chain (its last consumer finished). */
    void dropChain(const std::vector<size_t> &ids)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (size_t id : ids)
            freeSlot(slots_[id]);
    }

    uint64_t published() const { return published_; }
    uint64_t strideCheckpoints() const { return strideCheckpoints_; }
    uint64_t evictions() const { return evictions_; }
    uint64_t spillFallbacks() const { return spillFallbacks_; }
    size_t peakBytes() const { return peakBytes_; }

  private:
    enum class State
    {
        Pending, ///< producer has not resolved the entry yet
        Ready,   ///< snapshot held in memory
        Spilled, ///< snapshot parked in the spill store
        Dropped, ///< gone; consumers degrade
    };

    struct Slot
    {
        State state = State::Pending;
        rtl::PpCore::Snapshot snap;
        int64_t record = SpillStore::invalidId;
        unsigned remaining = 0;
        uint64_t lastUse = 0;
        bool stride = false;
    };

    /** Place @p snap into @p s, evicting/spilling as needed. */
    void insert(Slot &s, rtl::PpCore::Snapshot snap)
    {
        size_t bytes = snap.bytes();
        if (makeRoom(bytes)) {
            s.snap = std::move(snap);
            s.state = State::Ready;
            s.lastUse = ++useClock_;
            bytes_ += bytes;
            peakBytes_ = std::max(peakBytes_, bytes_);
        } else {
            // Too big for the whole memory budget (mid-trace
            // snapshots outgrow the reset-state estimate): straight
            // to the spill tier, or gone.
            s.state = spillSnapshot(s, snap) ? State::Spilled
                                             : State::Dropped;
        }
    }

    /** Evict LRU entries until @p bytes fits the memory budget. */
    bool makeRoom(size_t bytes)
    {
        if (bytes > budget_)
            return false;
        while (bytes_ + bytes > budget_) {
            size_t victim = slots_.size();
            for (size_t i = 0; i < slots_.size(); ++i) {
                if (slots_[i].state != State::Ready)
                    continue;
                if (victim == slots_.size() ||
                    slots_[i].lastUse < slots_[victim].lastUse)
                    victim = i;
            }
            if (victim == slots_.size())
                return bytes_ + bytes <= budget_;
            Slot &loser = slots_[victim];
            // Best effort: when the spill store is full, disabled,
            // or failing, the eviction becomes a drop.
            spillSnapshot(loser, loser.snap);
            freeInMemory(loser);
            ++evictions_;
        }
        return true;
    }

    /** Try to park @p snap in the spill store for @p s.
     *  @return true when @p s now points at a spill record. */
    bool spillSnapshot(Slot &s, const rtl::PpCore::Snapshot &snap)
    {
        if (!spill_ || !spill_->enabled())
            return false;
        std::vector<uint8_t> bytes = snap.serialize();
        int64_t record = spill_->append(bytes.data(), bytes.size());
        if (record == SpillStore::invalidId)
            return false;
        // Fault injection (testing): damage the record on disk so
        // the fault-back path must detect it and degrade.
        if (fault_ == ReplayOptions::SpillFault::CorruptCrc)
            spill_->corruptRecordForTesting(record);
        else if (fault_ == ReplayOptions::SpillFault::Truncate)
            spill_->truncateAtRecordForTesting(record);
        s.record = record;
        return true;
    }

    /** @return @p s's snapshot, faulting it back from spill if
     *  needed; invalid (with @p s dropped) on any failure. */
    rtl::PpCore::Snapshot materialize(Slot &s)
    {
        if (s.state == State::Ready) {
            s.lastUse = ++useClock_;
            return s.snap;
        }
        if (s.state == State::Spilled) {
            std::vector<uint8_t> bytes;
            if (spill_ && spill_->read(s.record, bytes)) {
                rtl::PpCore::Snapshot snap =
                    rtl::PpCore::deserializeSnapshot(
                        config_, rtl::CoreMode::Vector, bytes.data(),
                        bytes.size());
                if (snap.valid())
                    return snap;
            }
            // Damaged or unreadable record: degrade, never guess.
            ++spillFallbacks_;
            s.record = SpillStore::invalidId;
            s.state = State::Dropped;
        }
        return rtl::PpCore::Snapshot();
    }

    /** Forget an in-memory snapshot (keeps any Spilled marker). */
    void freeInMemory(Slot &s)
    {
        if (s.state != State::Ready)
            return;
        bytes_ -= s.snap.bytes();
        s.snap = rtl::PpCore::Snapshot();
        s.state = s.record != SpillStore::invalidId ? State::Spilled
                                                    : State::Dropped;
    }

    /** Drop @p s entirely (memory and spill reference). */
    void freeSlot(Slot &s)
    {
        if (s.state == State::Ready) {
            bytes_ -= s.snap.bytes();
            s.snap = rtl::PpCore::Snapshot();
        }
        s.record = SpillStore::invalidId;
        s.state = State::Dropped;
    }

    const rtl::PpConfig &config_;
    std::mutex mutex_;
    std::condition_variable cv_;
    /// Deque, not vector: addStride grows the container while other
    /// workers hold Slot references across cv_ waits in consume().
    std::deque<Slot> slots_;
    size_t budget_;
    SpillStore *spill_;
    ReplayOptions::SpillFault fault_;
    size_t bytes_ = 0;
    size_t peakBytes_ = 0;
    uint64_t useClock_ = 0;
    uint64_t published_ = 0;
    uint64_t strideCheckpoints_ = 0;
    uint64_t evictions_ = 0;
    uint64_t spillFallbacks_ = 0;
};

/**
 * Bug-set-axis donor records: one per trace, filled by the empty
 * bug set's job. Consumers (jobs for the same trace under a non-empty
 * bug set) block until the donor resolves; donor jobs precede every
 * consumer in plan order and are claimed in order, so a waited-on
 * donor is always running or done — the same no-deadlock argument as
 * CheckpointCache.
 */
class DonorTable
{
  public:
    explicit DonorTable(size_t traces) : entries_(traces) {}

    /** Donor completed: record its result and trigger cycles. */
    void publish(size_t trace, const PlayResult &result,
                 const std::array<uint64_t, rtl::numBugs> &triggers)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry &e = entries_[trace];
        e.result = result;
        e.triggers = triggers;
        e.state = State::Ready;
        cv_.notify_all();
    }

    /** Donor will never publish (its job was skipped). */
    void fail(size_t trace)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_[trace].state = State::Failed;
        cv_.notify_all();
    }

    /**
     * Block until @p trace's donor resolves. @return true (with
     * @p result / @p triggers filled) when it completed.
     */
    bool wait(size_t trace, PlayResult &result,
              std::array<uint64_t, rtl::numBugs> &triggers)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Entry &e = entries_[trace];
        cv_.wait(lock, [&] { return e.state != State::Pending; });
        if (e.state != State::Ready)
            return false;
        result = e.result;
        triggers = e.triggers;
        return true;
    }

  private:
    enum class State
    {
        Pending,
        Ready,
        Failed,
    };

    struct Entry
    {
        State state = State::Pending;
        PlayResult result;
        std::array<uint64_t, rtl::numBugs> triggers{};
    };

    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Entry> entries_;
};

/**
 * Per-trace chains of periodic donor checkpoints: (cycle, cache id)
 * links in increasing cycle order, filled by the donor job and read
 * by every non-donor job for the same trace after the donor
 * resolves. Each trace's chain carries a consumer count (one per
 * non-donor bug set); the last consumer frees the chain's cache
 * entries.
 */
class StrideChains
{
  public:
    StrideChains(size_t traces, unsigned consumers)
        : chains_(traces), remaining_(traces, consumers)
    {
    }

    /** Donor appends a checkpoint (cycles strictly increase). */
    void add(size_t trace, uint64_t cycle, size_t id)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        chains_[trace].push_back(Link{cycle, id});
    }

    /** @return cache id of the greatest checkpoint with cycle
     *  strictly below @p below, or -1 when none qualifies. */
    int64_t find(size_t trace, uint64_t below) const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto &chain = chains_[trace];
        for (size_t i = chain.size(); i-- > 0;) {
            if (chain[i].cycle < below)
                return (int64_t)chain[i].id;
        }
        return -1;
    }

    /**
     * Drop one consumer claim on @p trace's chain. @return the
     * chain's cache ids when this was the last claim (the caller
     * frees them in the cache), empty otherwise.
     */
    std::vector<size_t> release(size_t trace)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (--remaining_[trace] != 0)
            return {};
        std::vector<size_t> ids;
        ids.reserve(chains_[trace].size());
        for (const Link &link : chains_[trace])
            ids.push_back(link.id);
        chains_[trace].clear();
        chains_[trace].shrink_to_fit();
        return ids;
    }

  private:
    struct Link
    {
        uint64_t cycle = 0;
        size_t id = 0;
    };

    mutable std::mutex mutex_;
    std::vector<std::vector<Link>> chains_;
    std::vector<unsigned> remaining_;
};

/** Per-worker stat accumulators (merged once at the end). */
struct LocalStats
{
    uint64_t batchCycles = 0;
    uint64_t simulatedCycles = 0;
    uint64_t cyclesAvoided = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fallbacks = 0;
    uint64_t copies = 0;
    uint64_t strideHits = 0;
    uint64_t strideResumeCycles = 0;
    uint64_t triggeredJobs = 0;
    uint64_t triggeredJobCycles = 0;
    uint64_t triggeredLeadCycles = 0;
    uint64_t cancelled = 0;
    uint64_t warmCopies = 0;
    uint64_t warmChainHits = 0;
    uint64_t warmResumeCycles = 0;
    uint64_t warmInserts = 0;
};

/** Lower @p target to @p value if it is smaller (atomic min). */
void
fetchMin(std::atomic<size_t> &target, size_t value)
{
    size_t cur = target.load(std::memory_order_acquire);
    while (value < cur &&
           !target.compare_exchange_weak(cur, value,
                                         std::memory_order_acq_rel)) {
    }
}

} // namespace

std::shared_ptr<const ReplayWarmCache::Entry>
ReplayWarmCache::find(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    ++lookups_;
    auto it = entries_.find(key);
    if (it == entries_.end())
        return nullptr;
    ++hits_;
    it->second.lastUse = ++clock_;
    return it->second.entry;
}

void
ReplayWarmCache::insert(std::shared_ptr<Entry> entry)
{
    if (!entry)
        return;
    size_t bytes = sizeof(Entry) + entry->key.size();
    for (const ChainLink &link : entry->chain)
        bytes += sizeof(ChainLink) + link.snapshot.size();
    entry->bytes = bytes;

    std::lock_guard<std::mutex> lock(mutex_);
    if (entries_.count(entry->key))
        return; // entries are immutable; the first insert wins
    if (bytes > budget_)
        return; // alone past the whole budget: not cacheable
    while (bytes_ + bytes > budget_ && !entries_.empty()) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (victim == entries_.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        bytes_ -= victim->second.entry->bytes;
        entries_.erase(victim);
        ++evictions_;
    }
    bytes_ += bytes;
    ++inserts_;
    Slot &slot = entries_[entry->key];
    slot.entry = std::move(entry);
    slot.lastUse = ++clock_;
}

ReplayWarmCache::Stats
ReplayWarmCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.lookups = lookups_;
    s.hits = hits_;
    s.inserts = inserts_;
    s.evictions = evictions_;
    s.bytes = bytes_;
    s.entries = entries_.size();
    return s;
}

std::vector<std::shared_ptr<const ReplayWarmCache::Entry>>
ReplayWarmCache::entries() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::shared_ptr<const Entry>> out;
    out.reserve(entries_.size());
    for (const auto &[key, slot] : entries_)
        out.push_back(slot.entry);
    return out;
}

namespace
{

/** Warm-entry record format version (serializeEntry). */
constexpr uint32_t kWarmEntryVersion = 1;

void
packU32(std::vector<uint8_t> &out, uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
packU64(std::vector<uint8_t> &out, uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void
packBytes(std::vector<uint8_t> &out, const void *data, size_t size)
{
    packU64(out, size);
    const uint8_t *p = static_cast<const uint8_t *>(data);
    out.insert(out.end(), p, p + size);
}

/** Bounds-checked little-endian record reader; any overrun flips
 *  ok and pins the cursor, so callers test once at the end. */
struct EntryReader
{
    const uint8_t *data;
    size_t size;
    size_t pos = 0;
    bool ok = true;

    uint32_t
    u32()
    {
        if (!ok || size - pos < 4) {
            ok = false;
            return 0;
        }
        uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value |= uint32_t(data[pos + i]) << (8 * i);
        pos += 4;
        return value;
    }

    uint64_t
    u64()
    {
        if (!ok || size - pos < 8) {
            ok = false;
            return 0;
        }
        uint64_t value = 0;
        for (int i = 0; i < 8; ++i)
            value |= uint64_t(data[pos + i]) << (8 * i);
        pos += 8;
        return value;
    }

    bool
    bytes(std::vector<uint8_t> &out)
    {
        uint64_t n = u64();
        if (!ok || size - pos < n) {
            ok = false;
            return false;
        }
        out.assign(data + pos, data + pos + n);
        pos += n;
        return true;
    }

    bool
    str(std::string &out)
    {
        uint64_t n = u64();
        if (!ok || size - pos < n) {
            ok = false;
            return false;
        }
        out.assign(reinterpret_cast<const char *>(data + pos), n);
        pos += n;
        return true;
    }
};

} // namespace

std::vector<uint8_t>
ReplayWarmCache::serializeEntry(const Entry &entry)
{
    std::vector<uint8_t> out;
    packU32(out, kWarmEntryVersion);
    packBytes(out, entry.key.data(), entry.key.size());
    const PlayResult &donor = entry.donorResult;
    out.push_back(donor.diverged ? 1 : 0);
    packBytes(out, donor.diff.data(), donor.diff.size());
    packU64(out, donor.cycles);
    packU64(out, donor.instructions);
    packU64(out, donor.lockstepErrors);
    out.push_back(donor.drained ? 1 : 0);
    out.push_back(donor.skipped ? 1 : 0);
    packU32(out, static_cast<uint32_t>(rtl::numBugs));
    for (uint64_t trigger : entry.triggers)
        packU64(out, trigger);
    packU64(out, entry.chain.size());
    for (const ChainLink &link : entry.chain) {
        packU64(out, link.cycle);
        packBytes(out, link.snapshot.data(), link.snapshot.size());
    }
    return out;
}

std::shared_ptr<ReplayWarmCache::Entry>
ReplayWarmCache::deserializeEntry(const uint8_t *data, size_t size)
{
    EntryReader in{data, size};
    if (in.u32() != kWarmEntryVersion)
        return nullptr;
    auto entry = std::make_shared<Entry>();
    in.str(entry->key);
    PlayResult &donor = entry->donorResult;
    auto u8 = [&]() -> uint8_t {
        if (!in.ok || in.size - in.pos < 1) {
            in.ok = false;
            return 0;
        }
        return in.data[in.pos++];
    };
    donor.diverged = u8() != 0;
    in.str(donor.diff);
    donor.cycles = in.u64();
    donor.instructions = in.u64();
    donor.lockstepErrors = in.u64();
    donor.drained = u8() != 0;
    donor.skipped = u8() != 0;
    // A build with a different bug roster laid the triggers array
    // out differently; its records must not restore.
    if (in.u32() != static_cast<uint32_t>(rtl::numBugs))
        return nullptr;
    for (size_t i = 0; i < rtl::numBugs; ++i)
        entry->triggers[i] = in.u64();
    const uint64_t links = in.u64();
    if (!in.ok || links > in.size - in.pos)
        return nullptr; // lying count; each link needs >1 byte
    entry->chain.reserve(links);
    for (uint64_t i = 0; i < links; ++i) {
        ChainLink link;
        link.cycle = in.u64();
        in.bytes(link.snapshot);
        if (!in.ok)
            return nullptr;
        entry->chain.push_back(std::move(link));
    }
    if (!in.ok || in.pos != in.size)
        return nullptr; // trailing garbage is damage too
    return entry;
}

ReplayEngine::ReplayEngine(const rtl::PpConfig &config,
                           ReplayOptions options)
    : config_(config), options_(options)
{
    if (options_.numThreads == 0)
        fatal("ReplayEngine needs at least one worker");
}

std::vector<PlayResult>
ReplayEngine::playAll(const std::vector<vecgen::TestTrace> &traces,
                      const rtl::BugSet &bugs)
{
    return playAll(traces, std::vector<rtl::BugSet>{bugs});
}

std::vector<PlayResult>
ReplayEngine::playAll(const std::vector<vecgen::TestTrace> &traces,
                      const std::vector<rtl::BugSet> &bug_sets)
{
    stats_ = ReplayStats{};
    const size_t nt = traces.size();
    const size_t nb = bug_sets.size();
    std::vector<PlayResult> results(nt * nb);
    if (nt == 0 || nb == 0)
        return results;
    stats_.jobs = nt * nb;

    // Cross-batch warm cache: resolve each trace's entry up front by
    // its full serialized content (exact match, so a foreign trace
    // can never borrow a warm result). Keys of the misses are kept —
    // they become the insert keys when this batch's bug-free runs
    // populate the cache.
    ReplayWarmCache *warm = options_.warmCache.get();
    std::vector<std::shared_ptr<const ReplayWarmCache::Entry>>
        warm_entries(warm ? nt : 0);
    std::vector<std::string> warm_keys(warm ? nt : 0);
    if (warm) {
        stats_.warmLookups = nt;
        for (size_t t = 0; t < nt; ++t) {
            std::string key = vecgen::serializeTrace(traces[t]);
            warm_entries[t] = warm->find(key);
            if (warm_entries[t])
                ++stats_.warmHits;
            else
                warm_keys[t] = std::move(key);
        }
    }

    // ------------------------------------------------------------------
    // Plan: the batch's prefix tree. Sorting traces lexicographically
    // by forced-cycle content makes every shared prefix a contiguous
    // run, and the LCP chain between sorted neighbours is exactly a
    // DFS of the prefix tree — a stack of live checkpoints mirrors
    // the DFS path. Each job publishes at most one checkpoint: the
    // deepest prefix it shares with its sorted successor.
    // ------------------------------------------------------------------
    std::vector<size_t> order(nt);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const auto &ca = traces[a].cycles;
        const auto &cb = traces[b].cycles;
        if (ca != cb)
            return std::lexicographical_compare(ca.begin(), ca.end(),
                                                cb.begin(), cb.end());
        return a < b;
    });
    std::vector<size_t> lcp(nt, 0);
    for (size_t i = 1; i < nt; ++i)
        lcp[i] = commonPrefix(traces[order[i - 1]].cycles,
                              traces[order[i]].cycles);

    // Plan-time byte accounting uses one footprint estimate for all
    // checkpoints (dmem dominates and is config-fixed), keeping the
    // plan a pure function of the batch.
    const size_t est =
        rtl::PpCore(config_, rtl::CoreMode::Vector).snapshotBytes();
    const size_t budget = options_.checkpointBudgetBytes;
    const size_t min_prefix = std::max<size_t>(1, options_.minPrefixCycles);

    // Bug-set axis: when the batch contains the empty bug set, its
    // block runs first as the per-trace donor; jobs in other blocks
    // whose bugs never triggered on the donor run reuse its result
    // outright, and (with the stride tier active) triggered jobs
    // resume from the donor's in-trace checkpoint chain with the bug
    // mask re-armed.
    size_t donor_set = nb;
    if (budget > 0 && nb > 1) {
        for (size_t b = 0; b < nb; ++b) {
            if (bug_sets[b].none()) {
                donor_set = b;
                break;
            }
        }
    }
    const bool donor_active = donor_set < nb;
    std::vector<size_t> set_order(nb);
    std::iota(set_order.begin(), set_order.end(), size_t{0});
    if (donor_active)
        std::swap(set_order[0], set_order[donor_set]);

    // The stride tier: periodic checkpoints along each donor run,
    // consumed cross-bug-set. While active, non-donor blocks take no
    // prefix chains of their own — a checkpoint valid below every
    // trigger cycle of two bug sets serves both, so the donor chain
    // subsumes them (jobs it cannot serve replay from reset).
    const size_t stride = options_.checkpointStride;
    const bool stride_active =
        donor_active && stride > 0 && budget > 0;

    std::vector<SlotPlan> slots;
    std::vector<Job> jobs;
    jobs.reserve(nt * nb);
    for (size_t bi = 0; bi < nb; ++bi) {
        size_t b = set_order[bi];
        const bool chain_this_block = !stride_active || bi == 0;
        std::vector<std::pair<size_t, int>> stack; // (depth, slot)
        size_t live_bytes = 0;
        for (size_t i = 0; i < nt; ++i) {
            Job job;
            job.trace = order[i];
            job.bugSet = b;
            if (chain_this_block) {
                size_t shared = (i == 0) ? 0 : lcp[i];
                while (!stack.empty() &&
                       stack.back().first > shared) {
                    live_bytes -= est;
                    stack.pop_back();
                }
                size_t start = 0;
                if (!stack.empty()) {
                    job.restoreSlot = stack.back().second;
                    start = stack.back().first;
                    ++slots[static_cast<size_t>(job.restoreSlot)]
                          .consumers;
                }
                if (budget > 0 && i + 1 < nt) {
                    size_t depth = lcp[i + 1];
                    if (depth > start && depth >= min_prefix &&
                        live_bytes + est <= budget) {
                        job.publishSlot =
                            static_cast<int>(slots.size());
                        job.publishDepth = depth;
                        slots.push_back(
                            SlotPlan{job.trace, depth, 0});
                        stack.emplace_back(depth, job.publishSlot);
                        live_bytes += est;
                    }
                }
            }
            jobs.push_back(job);
        }
    }

    // ------------------------------------------------------------------
    // Execute. Workers claim jobs in plan order, so a checkpoint's
    // producer is always claimed before any of its consumers: every
    // wait in CheckpointCache::consume is on a job that is already
    // running (or done), and every running job publishes or abandons
    // its slot — no deadlock, any worker count. Stride chains are
    // read only after DonorTable::wait returns, which orders them
    // after the donor's last add.
    // ------------------------------------------------------------------
    SpillStore spill(SpillStore::Options{
        options_.spillDir,
        budget > 0 ? options_.spillBudgetBytes : 0});
    CheckpointCache cache(config_, slots, budget, &spill,
                          options_.spillFault);
    DonorTable donors(donor_active ? nt : 0);
    StrideChains chains(stride_active ? nt : 0,
                        static_cast<unsigned>(nb - 1));
    std::atomic<size_t> next_job{0};
    std::vector<std::atomic<size_t>> first_div(nb);
    for (auto &fd : first_div)
        fd.store(nt, std::memory_order_relaxed);

    telemetry::ScopedSpan batch_span("replay.batch", "traces", nt,
                                     "bug_sets", nb);
    telemetry::Histogram &resume_depth = telemetry::histogram(
        "replay.resume_depth", telemetry::depthBounds());

    auto run_one = [&](const Job &job, LocalStats &ls) {
        telemetry::ScopedSpan job_span("replay.job", "trace",
                                       job.trace, "bug_set",
                                       job.bugSet);
        const vecgen::TestTrace &trace = traces[job.trace];
        const size_t len = trace.cycles.size();
        const bool is_donor = donor_active && job.bugSet == donor_set;
        // Every non-donor job holds one claim on its trace's stride
        // chain; dropping the last claim frees the chain.
        auto release_chain = [&] {
            if (stride_active && !is_donor)
                cache.dropChain(chains.release(job.trace));
        };

        const bool past_divergence =
            options_.stopOnDivergence &&
            first_div[job.bugSet].load(std::memory_order_acquire) <
                job.trace;
        const bool cancelled =
            !past_divergence && options_.cancelFlag &&
            options_.cancelFlag->load(std::memory_order_relaxed);
        if (past_divergence || cancelled) {
            // A trace earlier in the batch already diverged under
            // this bug set (or the batch was cancelled); drop our
            // claims so waiters resolve.
            if (job.restoreSlot >= 0)
                cache.release(static_cast<size_t>(job.restoreSlot));
            if (job.publishSlot >= 0)
                cache.abandon(static_cast<size_t>(job.publishSlot));
            if (is_donor)
                donors.fail(job.trace);
            release_chain();
            results[job.bugSet * nt + job.trace].skipped = true;
            if (cancelled)
                ++ls.cancelled;
            return;
        }

        // Fourth sharing axis: a warm entry deposited by an earlier
        // batch's bug-free run over a content-identical trace. It
        // plays the donor-block role without the wait — copy the
        // donor result outright when none of this job's bugs ever
        // triggered, otherwise resume from the warm checkpoint chain
        // below the first trigger (selected further down).
        const ReplayWarmCache::Entry *warm_entry_hit =
            warm ? warm_entries[job.trace].get() : nullptr;
        uint64_t warm_first = UINT64_MAX;
        if (warm_entry_hit) {
            uint64_t first = UINT64_MAX;
            for (size_t i = 0; i < rtl::numBugs; ++i) {
                if (bug_sets[job.bugSet].test(i))
                    first = std::min(first, warm_entry_hit->triggers[i]);
            }
            if (first == UINT64_MAX) {
                ++ls.warmCopies;
                ls.batchCycles += len;
                ls.cyclesAvoided += warm_entry_hit->donorResult.cycles;
                results[job.bugSet * nt + job.trace] =
                    warm_entry_hit->donorResult;
                if (is_donor)
                    donors.publish(job.trace,
                                   warm_entry_hit->donorResult,
                                   warm_entry_hit->triggers);
                if (job.restoreSlot >= 0)
                    cache.release(
                        static_cast<size_t>(job.restoreSlot));
                if (job.publishSlot >= 0)
                    cache.abandon(
                        static_cast<size_t>(job.publishSlot));
                release_chain();
                if (warm_entry_hit->donorResult.diverged &&
                    options_.stopOnDivergence)
                    fetchMin(first_div[job.bugSet], job.trace);
                return;
            }
            warm_first = first;
            ++ls.triggeredJobs;
            ls.triggeredJobCycles += len;
            ls.triggeredLeadCycles += std::min<uint64_t>(first, len);
        }

        // Bug-free jobs of a warm-enabled batch deposit the entry
        // the next batch will hit: the in-batch donor when there is
        // one, or a single-bug-set batch's own empty-set jobs (the
        // service's warm-up shape).
        const bool populate =
            warm && !warm_entry_hit &&
            bug_sets[job.bugSet].none() && (is_donor || nb == 1);
        std::shared_ptr<ReplayWarmCache::Entry> warm_entry;
        if (populate)
            warm_entry = std::make_shared<ReplayWarmCache::Entry>();

        // The cross-bug-set axes: wholesale donor-result reuse for
        // never-triggered jobs, donor-chain resume for triggered
        // ones. Both hinge on the same guarantee — fault effects are
        // strictly trigger-guarded and trigger cycles are recorded
        // on the bug-free run — so the donor's trajectory *is* the
        // bugged trajectory below the first trigger.
        int64_t stride_entry = -1;
        if (!warm_entry_hit && donor_active && !is_donor) {
            PlayResult donor_result;
            std::array<uint64_t, rtl::numBugs> triggers{};
            if (donors.wait(job.trace, donor_result, triggers)) {
                uint64_t first = UINT64_MAX;
                for (size_t i = 0; i < rtl::numBugs; ++i) {
                    if (bug_sets[job.bugSet].test(i))
                        first = std::min(first, triggers[i]);
                }
                if (first == UINT64_MAX) {
                    ++ls.copies;
                    ls.batchCycles += len;
                    ls.cyclesAvoided += donor_result.cycles;
                    results[job.bugSet * nt + job.trace] =
                        donor_result;
                    // Drop this job's slot claims so planned waiters
                    // in the same block resolve (they fall back to
                    // from-reset replay if they cannot copy too).
                    if (job.restoreSlot >= 0)
                        cache.release(
                            static_cast<size_t>(job.restoreSlot));
                    if (job.publishSlot >= 0)
                        cache.abandon(
                            static_cast<size_t>(job.publishSlot));
                    release_chain();
                    if (donor_result.diverged &&
                        options_.stopOnDivergence)
                        fetchMin(first_div[job.bugSet], job.trace);
                    return;
                }
                ++ls.triggeredJobs;
                ls.triggeredJobCycles += len;
                // The avoidable pool: the bug-free lead up to the
                // first trigger (a trigger can fire during drain, so
                // cap at the forced-cycle length).
                ls.triggeredLeadCycles +=
                    std::min<uint64_t>(first, len);
                if (stride_active)
                    stride_entry = chains.find(job.trace, first);
            }
        }

        rtl::PpCore core(config_, rtl::CoreMode::Vector);
        VectorPlayer::primeCore(core, trace, bug_sets[job.bugSet]);

        size_t start = 0;
        if (warm_entry_hit) {
            // Warm-chain resume: greatest link strictly below the
            // first trigger (the cross-bug-set validity rule), within
            // the trace, and — when this job still owes a planned
            // checkpoint — strictly below its publish depth so the
            // drive loop pauses there. A serialized snapshot is
            // self-contained (the core owns its stream and inbox by
            // value, and the key guarantees identical content), so a
            // valid record restores with nothing to rebind; a damaged
            // or foreign record degrades to from-reset replay.
            const ReplayWarmCache::ChainLink *link = nullptr;
            const auto &chain = warm_entry_hit->chain;
            for (size_t i = chain.size(); i-- > 0;) {
                if (chain[i].cycle < warm_first &&
                    chain[i].cycle <= len &&
                    (job.publishSlot < 0 ||
                     chain[i].cycle < job.publishDepth)) {
                    link = &chain[i];
                    break;
                }
            }
            if (link) {
                rtl::PpCore::Snapshot snap =
                    rtl::PpCore::deserializeSnapshot(
                        config_, rtl::CoreMode::Vector,
                        link->snapshot.data(), link->snapshot.size());
                if (snap.valid() && snap.cycles() <= len) {
                    core.restoreWithBugs(snap, bug_sets[job.bugSet]);
                    start = snap.cycles();
                    ++ls.warmChainHits;
                    ls.warmResumeCycles += start;
                    ls.cyclesAvoided += start;
                } else {
                    ++ls.misses;
                }
            }
        }
        if (warm_entry_hit && start > 0 && job.restoreSlot >= 0) {
            // The warm resume superseded the planned restore; drop
            // the claim so the slot can be freed.
            cache.release(static_cast<size_t>(job.restoreSlot));
        } else if (stride_entry >= 0) {
            // In-trace donor checkpoint: same trace, so the stimulus
            // is identical by construction and no prefix
            // verification is needed; validity below the first
            // trigger was checked when the entry was chosen. The
            // restore re-arms this job's bug mask (the one field of
            // the donor state that legitimately differs).
            rtl::PpCore::Snapshot snap =
                cache.fetchStride(static_cast<size_t>(stride_entry));
            if (!snap.valid() || snap.cycles() > len) {
                ++ls.misses;
            } else {
                core.restoreWithBugs(snap, bug_sets[job.bugSet]);
                start = snap.cycles();
                ++ls.strideHits;
                ls.strideResumeCycles += start;
                ls.cyclesAvoided += start;
            }
        } else if (job.restoreSlot >= 0) {
            rtl::PpCore::Snapshot snap =
                cache.consume(static_cast<size_t>(job.restoreSlot));
            if (!snap.valid()) {
                ++ls.misses;
            } else {
                const vecgen::TestTrace &donor =
                    traces[slots[static_cast<size_t>(job.restoreSlot)]
                               .donorTrace];
                // Exact reuse condition: our stimulus prefix must
                // equal the donor's up to everything the checkpoint
                // consumed. On any mismatch, replay from reset —
                // correctness never rides on the plan being right.
                size_t depth = snap.cycles();
                size_t consumed = snap.streamConsumed();
                size_t popped =
                    donor.inbox.size() - snap.inboxRemaining();
                bool ok =
                    depth <= trace.cycles.size() &&
                    consumed <= trace.fetchStream.size() &&
                    popped <= trace.inbox.size() &&
                    std::equal(donor.cycles.begin(),
                               donor.cycles.begin() +
                                   static_cast<long>(depth),
                               trace.cycles.begin()) &&
                    std::equal(donor.fetchStream.begin(),
                               donor.fetchStream.begin() +
                                   static_cast<long>(consumed),
                               trace.fetchStream.begin()) &&
                    std::equal(donor.inbox.begin(),
                               donor.inbox.begin() +
                                   static_cast<long>(popped),
                               trace.inbox.begin());
                if (!ok) {
                    ++ls.fallbacks;
                } else {
                    core.restore(snap);
                    core.rebindStream(trace.fetchStream);
                    core.rebindInbox(trace.inbox, popped);
                    start = depth;
                    ++ls.hits;
                    ls.cyclesAvoided += depth;
                }
            }
        }

        resume_depth.record(double(start));

        // Drive to the end of the trace, pausing at this job's
        // planned publish depth and (donor runs) at every stride
        // boundary to snapshot. The donor publishes its chain links
        // before DonorTable::publish, so consumers always see a
        // complete chain.
        const size_t my_stride =
            (stride_active && is_donor) ? stride : 0;
        // Populating runs pause at stride boundaries even when the
        // in-batch tier is off (single-bug-set warm-up batches have
        // no in-batch consumers) — one snapshot per boundary serves
        // both the in-batch chain and the warm entry.
        const size_t snap_stride =
            my_stride ? my_stride
                      : (populate && stride > 0 ? stride : 0);
        uint64_t stepped_from = core.cycles();
        size_t pos = start;
        size_t next_stride =
            snap_stride ? (start / snap_stride + 1) * snap_stride
                        : len + 1;
        // Warm-chain population stays under the cache's per-entry
        // byte cap by logarithmic thinning: when the next link would
        // overflow, drop every other kept link and double the link
        // stride. Coverage degrades gracefully — a long trace keeps
        // geometrically spaced resume points instead of none.
        size_t warm_link_stride = snap_stride;
        size_t warm_chain_bytes = 0;
        auto warm_add_link = [&](size_t cycle,
                                 const rtl::PpCore::Snapshot &snap) {
            if (cycle % warm_link_stride != 0)
                return;
            std::vector<uint8_t> bytes = snap.serialize();
            const size_t cap = warm->chainBytesCap();
            const size_t cost = sizeof(ReplayWarmCache::ChainLink) +
                                bytes.size();
            auto &chain = warm_entry->chain;
            while (warm_chain_bytes + cost > cap && !chain.empty()) {
                warm_link_stride *= 2;
                size_t kept = 0;
                warm_chain_bytes = 0;
                for (size_t i = 0; i < chain.size(); ++i) {
                    if (chain[i].cycle % warm_link_stride != 0)
                        continue;
                    warm_chain_bytes +=
                        sizeof(ReplayWarmCache::ChainLink) +
                        chain[i].snapshot.size();
                    chain[kept++] = std::move(chain[i]);
                }
                chain.resize(kept);
            }
            if (cycle % warm_link_stride != 0 ||
                warm_chain_bytes + cost > cap)
                return;
            warm_chain_bytes += cost;
            chain.push_back(ReplayWarmCache::ChainLink{
                cycle, std::move(bytes)});
        };
        while (pos < len) {
            size_t stop = len;
            if (job.publishSlot >= 0 && job.publishDepth > pos)
                stop = std::min(stop, job.publishDepth);
            if (next_stride > pos)
                stop = std::min(stop, next_stride);
            VectorPlayer::drive(core, trace, pos, stop);
            pos = stop;
            if (job.publishSlot >= 0 && pos == job.publishDepth)
                cache.publish(static_cast<size_t>(job.publishSlot),
                              core.snapshot());
            if (snap_stride && pos == next_stride) {
                if (pos < len) {
                    rtl::PpCore::Snapshot snap = core.snapshot();
                    if (populate)
                        warm_add_link(pos, snap);
                    if (my_stride)
                        chains.add(job.trace, pos,
                                   cache.addStride(std::move(snap)));
                }
                next_stride += snap_stride;
            }
        }
        // The loop above always reaches publishDepth (the plan keeps
        // it in (start, len]); this guard only exists so a planning
        // bug could never strand waiters on a Pending slot.
        if (job.publishSlot >= 0 && job.publishDepth > len)
            cache.abandon(static_cast<size_t>(job.publishSlot));
        PlayResult result = VectorPlayer::finish(config_, core, trace);
        ls.simulatedCycles += core.cycles() - stepped_from;
        ls.batchCycles += len;
        results[job.bugSet * nt + job.trace] = result;

        if (is_donor || populate) {
            // Trigger cycles are exact even when this run resumed
            // from a checkpoint: the snapshot carries the donor
            // prefix's counters, and the verified-identical stimulus
            // makes that prefix's triggers this trace's triggers.
            std::array<uint64_t, rtl::numBugs> triggers{};
            for (size_t i = 0; i < rtl::numBugs; ++i)
                triggers[i] =
                    core.bugFirstTrigger(static_cast<rtl::BugId>(i));
            if (is_donor)
                donors.publish(job.trace, result, triggers);
            if (populate) {
                warm_entry->key = std::move(warm_keys[job.trace]);
                warm_entry->donorResult = result;
                warm_entry->triggers = triggers;
                warm->insert(std::move(warm_entry));
                ++ls.warmInserts;
            }
        }
        release_chain();

        if (result.diverged && options_.stopOnDivergence)
            fetchMin(first_div[job.bugSet], job.trace);
    };

    unsigned workers = std::min<size_t>(options_.numThreads, jobs.size());
    std::vector<LocalStats> local(std::max(1u, workers));
    if (workers <= 1) {
        for (const Job &job : jobs)
            run_one(job, local[0]);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        // Worker spans must stay attributable to the service job
        // that spawned them, so the caller's correlation id travels
        // into each pool thread.
        const uint64_t job_id = telemetry::currentJobId();
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&, w, job_id] {
                telemetry::JobScope job_scope(job_id);
                if (telemetry::tracingEnabled()) {
                    telemetry::setThreadName(
                        formatString("replay.worker.%u", w));
                }
                while (true) {
                    size_t j = next_job.fetch_add(
                        1, std::memory_order_relaxed);
                    if (j >= jobs.size())
                        break;
                    run_one(jobs[j], local[w]);
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    // Normalize early-exit batches: everything after a bug set's
    // first divergence reads as skipped, whether or not a worker got
    // to it before the divergence was known. This makes the result
    // vector a pure function of the batch for any worker count.
    if (options_.stopOnDivergence) {
        for (size_t b = 0; b < nb; ++b) {
            size_t fd = first_div[b].load(std::memory_order_acquire);
            for (size_t t = fd + 1; t < nt; ++t) {
                PlayResult &r = results[b * nt + t];
                r = PlayResult{};
                r.skipped = true;
                ++stats_.jobsSkipped;
            }
        }
    }

    for (const LocalStats &ls : local) {
        stats_.batchCycles += ls.batchCycles;
        stats_.simulatedCycles += ls.simulatedCycles;
        stats_.cyclesAvoided += ls.cyclesAvoided;
        stats_.checkpointHits += ls.hits;
        stats_.checkpointMisses += ls.misses;
        stats_.verifyFallbacks += ls.fallbacks;
        stats_.bugSetCopies += ls.copies;
        stats_.strideHits += ls.strideHits;
        stats_.strideResumeCycles += ls.strideResumeCycles;
        stats_.triggeredJobs += ls.triggeredJobs;
        stats_.triggeredJobCycles += ls.triggeredJobCycles;
        stats_.triggeredLeadCycles += ls.triggeredLeadCycles;
        stats_.jobsSkipped += ls.cancelled;
        stats_.warmCopies += ls.warmCopies;
        stats_.warmChainHits += ls.warmChainHits;
        stats_.warmResumeCycles += ls.warmResumeCycles;
        stats_.warmInserts += ls.warmInserts;
    }
    stats_.checkpointsPublished = cache.published();
    stats_.strideCheckpoints = cache.strideCheckpoints();
    stats_.cacheEvictions = cache.evictions();
    stats_.peakCacheBytes = cache.peakBytes();
    stats_.spillWrites = spill.writes();
    stats_.spillReads = spill.reads();
    stats_.spillBytes = spill.bytesWritten();
    stats_.spillFallbacks = cache.spillFallbacks();

    // Registry mirror of the batch stats: one add per batch keeps
    // the hot path free of shared-counter traffic.
    telemetry::counter("replay.jobs").add(stats_.jobs);
    telemetry::counter("replay.checkpoint_hits")
        .add(stats_.checkpointHits);
    telemetry::counter("replay.checkpoint_misses")
        .add(stats_.checkpointMisses);
    telemetry::counter("replay.verify_fallbacks")
        .add(stats_.verifyFallbacks);
    telemetry::counter("replay.bug_set_copies")
        .add(stats_.bugSetCopies);
    telemetry::counter("replay.stride_hits").add(stats_.strideHits);
    telemetry::counter("replay.spill_writes").add(stats_.spillWrites);
    telemetry::counter("replay.spill_reads").add(stats_.spillReads);
    telemetry::counter("replay.spill_fallbacks")
        .add(stats_.spillFallbacks);
    if (stats_.spillFallbacks)
        flight::recordEvent(flight::EventKind::SpillFallback,
                            telemetry::currentJobId(),
                            stats_.spillFallbacks, "replay");
    telemetry::counter("replay.cycles_avoided")
        .add(stats_.cyclesAvoided);
    telemetry::counter("replay.cycles_simulated")
        .add(stats_.simulatedCycles);
    telemetry::gauge("replay.peak_cache_bytes")
        .set(static_cast<int64_t>(stats_.peakCacheBytes));
    if (warm) {
        telemetry::counter("replay.warm_lookups")
            .add(stats_.warmLookups);
        telemetry::counter("replay.warm_hits").add(stats_.warmHits);
        telemetry::counter("replay.warm_copies")
            .add(stats_.warmCopies);
        telemetry::counter("replay.warm_chain_hits")
            .add(stats_.warmChainHits);
        telemetry::counter("replay.warm_inserts")
            .add(stats_.warmInserts);
    }
    return results;
}

} // namespace archval::harness

#include "replay_engine.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>

#include "support/status.hh"

namespace archval::harness
{

namespace
{

/** One replay job: a (trace, bug set) pair plus its plan. */
struct Job
{
    size_t trace = 0;        ///< index into the batch
    size_t bugSet = 0;       ///< index into the bug-set list
    int restoreSlot = -1;    ///< checkpoint to resume from
    int publishSlot = -1;    ///< checkpoint this job must produce
    size_t publishDepth = 0; ///< absolute cycle of the publish
};

/** Plan-time record of one checkpoint. */
struct SlotPlan
{
    size_t donorTrace = 0;
    size_t depth = 0;
    unsigned consumers = 0;
};

/** @return length of the common forced-cycle prefix of two traces. */
size_t
commonPrefix(const std::vector<rtl::ForcedSignals> &a,
             const std::vector<rtl::ForcedSignals> &b)
{
    size_t n = std::min(a.size(), b.size());
    size_t i = 0;
    while (i < n && a[i] == b[i])
        ++i;
    return i;
}

/**
 * Runtime checkpoint cache: slot lifecycle plus LRU eviction under
 * the byte budget. One mutex guards everything — publishes and
 * consumes are rare next to the simulation they save.
 */
class CheckpointCache
{
  public:
    CheckpointCache(const std::vector<SlotPlan> &plans, size_t budget)
        : budget_(budget)
    {
        slots_.resize(plans.size());
        for (size_t i = 0; i < plans.size(); ++i)
            slots_[i].remaining = plans[i].consumers;
    }

    /** Store @p snap for @p slot (or drop it if it cannot fit). */
    void publish(size_t slot, rtl::PpCore::Snapshot snap)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Slot &s = slots_[slot];
        size_t bytes = snap.bytes();
        if (s.remaining == 0 || bytes > budget_) {
            s.state = State::Dropped;
        } else {
            // Evict least-recently-used entries until the newcomer
            // fits; a planned consumer of an evicted entry falls
            // back to from-reset replay.
            while (bytes_ + bytes > budget_) {
                size_t victim = slots_.size();
                for (size_t i = 0; i < slots_.size(); ++i) {
                    if (slots_[i].state != State::Ready)
                        continue;
                    if (victim == slots_.size() ||
                        slots_[i].lastUse < slots_[victim].lastUse)
                        victim = i;
                }
                if (victim == slots_.size())
                    break; // nothing left to evict
                drop(slots_[victim]);
                ++evictions_;
            }
            if (bytes_ + bytes > budget_) {
                s.state = State::Dropped;
            } else {
                s.snap = std::move(snap);
                s.state = State::Ready;
                s.lastUse = ++useClock_;
                bytes_ += bytes;
                peakBytes_ = std::max(peakBytes_, bytes_);
                ++published_;
            }
        }
        cv_.notify_all();
    }

    /** The producer will never publish @p slot (job skipped). */
    void abandon(size_t slot)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (slots_[slot].state == State::Pending)
            slots_[slot].state = State::Dropped;
        cv_.notify_all();
    }

    /**
     * Block until @p slot resolves; @return its snapshot, or an
     * invalid one when it was dropped or evicted. Decrements the
     * planned-consumer count (the last consumer frees the entry).
     */
    rtl::PpCore::Snapshot consume(size_t slot)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Slot &s = slots_[slot];
        cv_.wait(lock, [&] { return s.state != State::Pending; });
        rtl::PpCore::Snapshot out;
        if (s.state == State::Ready) {
            out = s.snap;
            s.lastUse = ++useClock_;
        }
        if (--s.remaining == 0 && s.state == State::Ready)
            drop(s);
        return out;
    }

    /** Drop a consumer claim without waiting (job skipped). */
    void release(size_t slot)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Slot &s = slots_[slot];
        if (--s.remaining == 0 && s.state == State::Ready)
            drop(s);
    }

    uint64_t published() const { return published_; }
    uint64_t evictions() const { return evictions_; }
    size_t peakBytes() const { return peakBytes_; }

  private:
    enum class State
    {
        Pending,
        Ready,
        Dropped,
    };

    struct Slot
    {
        State state = State::Pending;
        rtl::PpCore::Snapshot snap;
        unsigned remaining = 0;
        uint64_t lastUse = 0;
    };

    void drop(Slot &s)
    {
        bytes_ -= s.snap.bytes();
        s.snap = rtl::PpCore::Snapshot();
        s.state = State::Dropped;
    }

    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Slot> slots_;
    size_t budget_;
    size_t bytes_ = 0;
    size_t peakBytes_ = 0;
    uint64_t useClock_ = 0;
    uint64_t published_ = 0;
    uint64_t evictions_ = 0;
};

/**
 * Bug-set-axis donor records: one per trace, filled by the empty
 * bug set's job. Consumers (jobs for the same trace under a non-empty
 * bug set) block until the donor resolves; donor jobs precede every
 * consumer in plan order and are claimed in order, so a waited-on
 * donor is always running or done — the same no-deadlock argument as
 * CheckpointCache.
 */
class DonorTable
{
  public:
    explicit DonorTable(size_t traces) : entries_(traces) {}

    /** Donor completed: record its result and trigger cycles. */
    void publish(size_t trace, const PlayResult &result,
                 const std::array<uint64_t, rtl::numBugs> &triggers)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Entry &e = entries_[trace];
        e.result = result;
        e.triggers = triggers;
        e.state = State::Ready;
        cv_.notify_all();
    }

    /** Donor will never publish (its job was skipped). */
    void fail(size_t trace)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        entries_[trace].state = State::Failed;
        cv_.notify_all();
    }

    /**
     * Block until @p trace's donor resolves. @return true (with
     * @p result / @p triggers filled) when it completed.
     */
    bool wait(size_t trace, PlayResult &result,
              std::array<uint64_t, rtl::numBugs> &triggers)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        Entry &e = entries_[trace];
        cv_.wait(lock, [&] { return e.state != State::Pending; });
        if (e.state != State::Ready)
            return false;
        result = e.result;
        triggers = e.triggers;
        return true;
    }

  private:
    enum class State
    {
        Pending,
        Ready,
        Failed,
    };

    struct Entry
    {
        State state = State::Pending;
        PlayResult result;
        std::array<uint64_t, rtl::numBugs> triggers{};
    };

    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Entry> entries_;
};

/** Per-worker stat accumulators (merged once at the end). */
struct LocalStats
{
    uint64_t batchCycles = 0;
    uint64_t simulatedCycles = 0;
    uint64_t cyclesAvoided = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fallbacks = 0;
    uint64_t copies = 0;
};

/** Lower @p target to @p value if it is smaller (atomic min). */
void
fetchMin(std::atomic<size_t> &target, size_t value)
{
    size_t cur = target.load(std::memory_order_acquire);
    while (value < cur &&
           !target.compare_exchange_weak(cur, value,
                                         std::memory_order_acq_rel)) {
    }
}

} // namespace

ReplayEngine::ReplayEngine(const rtl::PpConfig &config,
                           ReplayOptions options)
    : config_(config), options_(options)
{
    if (options_.numThreads == 0)
        fatal("ReplayEngine needs at least one worker");
}

std::vector<PlayResult>
ReplayEngine::playAll(const std::vector<vecgen::TestTrace> &traces,
                      const rtl::BugSet &bugs)
{
    return playAll(traces, std::vector<rtl::BugSet>{bugs});
}

std::vector<PlayResult>
ReplayEngine::playAll(const std::vector<vecgen::TestTrace> &traces,
                      const std::vector<rtl::BugSet> &bug_sets)
{
    stats_ = ReplayStats{};
    const size_t nt = traces.size();
    const size_t nb = bug_sets.size();
    std::vector<PlayResult> results(nt * nb);
    if (nt == 0 || nb == 0)
        return results;
    stats_.jobs = nt * nb;

    // ------------------------------------------------------------------
    // Plan: the batch's prefix tree. Sorting traces lexicographically
    // by forced-cycle content makes every shared prefix a contiguous
    // run, and the LCP chain between sorted neighbours is exactly a
    // DFS of the prefix tree — a stack of live checkpoints mirrors
    // the DFS path. Each job publishes at most one checkpoint: the
    // deepest prefix it shares with its sorted successor.
    // ------------------------------------------------------------------
    std::vector<size_t> order(nt);
    std::iota(order.begin(), order.end(), size_t{0});
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const auto &ca = traces[a].cycles;
        const auto &cb = traces[b].cycles;
        if (ca != cb)
            return std::lexicographical_compare(ca.begin(), ca.end(),
                                                cb.begin(), cb.end());
        return a < b;
    });
    std::vector<size_t> lcp(nt, 0);
    for (size_t i = 1; i < nt; ++i)
        lcp[i] = commonPrefix(traces[order[i - 1]].cycles,
                              traces[order[i]].cycles);

    // Plan-time byte accounting uses one footprint estimate for all
    // checkpoints (dmem dominates and is config-fixed), keeping the
    // plan a pure function of the batch.
    const size_t est =
        rtl::PpCore(config_, rtl::CoreMode::Vector).snapshotBytes();
    const size_t budget = options_.checkpointBudgetBytes;
    const size_t min_prefix = std::max<size_t>(1, options_.minPrefixCycles);

    // Bug-set axis: when the batch contains the empty bug set, its
    // block runs first as the per-trace donor; jobs in other blocks
    // whose bugs never triggered on the donor run reuse its result
    // outright. Every block still gets its own cross-trace prefix
    // chain — a job that cannot copy (its bug did trigger) resumes
    // from its block's nearest checkpoint instead of from reset.
    size_t donor_set = nb;
    if (budget > 0 && nb > 1) {
        for (size_t b = 0; b < nb; ++b) {
            if (bug_sets[b].none()) {
                donor_set = b;
                break;
            }
        }
    }
    const bool donor_active = donor_set < nb;
    std::vector<size_t> set_order(nb);
    std::iota(set_order.begin(), set_order.end(), size_t{0});
    if (donor_active)
        std::swap(set_order[0], set_order[donor_set]);

    std::vector<SlotPlan> slots;
    std::vector<Job> jobs;
    jobs.reserve(nt * nb);
    for (size_t b : set_order) {
        std::vector<std::pair<size_t, int>> stack; // (depth, slot)
        size_t live_bytes = 0;
        for (size_t i = 0; i < nt; ++i) {
            Job job;
            job.trace = order[i];
            job.bugSet = b;
            size_t shared = (i == 0) ? 0 : lcp[i];
            while (!stack.empty() && stack.back().first > shared) {
                live_bytes -= est;
                stack.pop_back();
            }
            size_t start = 0;
            if (!stack.empty()) {
                job.restoreSlot = stack.back().second;
                start = stack.back().first;
                ++slots[static_cast<size_t>(job.restoreSlot)].consumers;
            }
            if (budget > 0 && i + 1 < nt) {
                size_t depth = lcp[i + 1];
                if (depth > start && depth >= min_prefix &&
                    live_bytes + est <= budget) {
                    job.publishSlot = static_cast<int>(slots.size());
                    job.publishDepth = depth;
                    slots.push_back(SlotPlan{job.trace, depth, 0});
                    stack.emplace_back(depth, job.publishSlot);
                    live_bytes += est;
                }
            }
            jobs.push_back(job);
        }
    }

    // ------------------------------------------------------------------
    // Execute. Workers claim jobs in plan order, so a checkpoint's
    // producer is always claimed before any of its consumers: every
    // wait in CheckpointCache::consume is on a job that is already
    // running (or done), and every running job publishes or abandons
    // its slot — no deadlock, any worker count.
    // ------------------------------------------------------------------
    CheckpointCache cache(slots, budget);
    DonorTable donors(donor_active ? nt : 0);
    std::atomic<size_t> next_job{0};
    std::vector<std::atomic<size_t>> first_div(nb);
    for (auto &fd : first_div)
        fd.store(nt, std::memory_order_relaxed);

    auto run_one = [&](const Job &job, LocalStats &ls) {
        const vecgen::TestTrace &trace = traces[job.trace];
        const bool is_donor = donor_active && job.bugSet == donor_set;

        if (options_.stopOnDivergence &&
            first_div[job.bugSet].load(std::memory_order_acquire) <
                job.trace) {
            // A trace earlier in the batch already diverged under
            // this bug set; drop our claims so waiters resolve.
            if (job.restoreSlot >= 0)
                cache.release(static_cast<size_t>(job.restoreSlot));
            if (job.publishSlot >= 0)
                cache.abandon(static_cast<size_t>(job.publishSlot));
            if (is_donor)
                donors.fail(job.trace);
            results[job.bugSet * nt + job.trace].skipped = true;
            return;
        }

        if (donor_active && !is_donor) {
            // Reuse the trace's bug-free run wholesale when none of
            // this job's bugs ever triggered on it: the fault effects
            // are strictly trigger-guarded, so the bugged run is
            // bit-identical end to end (drain included).
            PlayResult donor_result;
            std::array<uint64_t, rtl::numBugs> triggers{};
            if (donors.wait(job.trace, donor_result, triggers)) {
                uint64_t first = UINT64_MAX;
                for (size_t i = 0; i < rtl::numBugs; ++i) {
                    if (bug_sets[job.bugSet].test(i))
                        first = std::min(first, triggers[i]);
                }
                if (first == UINT64_MAX) {
                    ++ls.copies;
                    ls.batchCycles += trace.cycles.size();
                    ls.cyclesAvoided += donor_result.cycles;
                    results[job.bugSet * nt + job.trace] =
                        donor_result;
                    // Drop this job's slot claims so planned waiters
                    // in the same block resolve (they fall back to
                    // from-reset replay if they cannot copy too).
                    if (job.restoreSlot >= 0)
                        cache.release(
                            static_cast<size_t>(job.restoreSlot));
                    if (job.publishSlot >= 0)
                        cache.abandon(
                            static_cast<size_t>(job.publishSlot));
                    if (donor_result.diverged &&
                        options_.stopOnDivergence)
                        fetchMin(first_div[job.bugSet], job.trace);
                    return;
                }
            }
        }

        rtl::PpCore core(config_, rtl::CoreMode::Vector);
        VectorPlayer::primeCore(core, trace, bug_sets[job.bugSet]);

        size_t start = 0;
        if (job.restoreSlot >= 0) {
            rtl::PpCore::Snapshot snap =
                cache.consume(static_cast<size_t>(job.restoreSlot));
            if (!snap.valid()) {
                ++ls.misses;
            } else {
                const vecgen::TestTrace &donor =
                    traces[slots[static_cast<size_t>(job.restoreSlot)]
                               .donorTrace];
                // Exact reuse condition: our stimulus prefix must
                // equal the donor's up to everything the checkpoint
                // consumed. On any mismatch, replay from reset —
                // correctness never rides on the plan being right.
                size_t depth = snap.cycles();
                size_t consumed = snap.streamConsumed();
                size_t popped =
                    donor.inbox.size() - snap.inboxRemaining();
                bool ok =
                    depth <= trace.cycles.size() &&
                    consumed <= trace.fetchStream.size() &&
                    popped <= trace.inbox.size() &&
                    std::equal(donor.cycles.begin(),
                               donor.cycles.begin() +
                                   static_cast<long>(depth),
                               trace.cycles.begin()) &&
                    std::equal(donor.fetchStream.begin(),
                               donor.fetchStream.begin() +
                                   static_cast<long>(consumed),
                               trace.fetchStream.begin()) &&
                    std::equal(donor.inbox.begin(),
                               donor.inbox.begin() +
                                   static_cast<long>(popped),
                               trace.inbox.begin());
                if (!ok) {
                    ++ls.fallbacks;
                } else {
                    core.restore(snap);
                    core.rebindStream(trace.fetchStream);
                    core.rebindInbox(trace.inbox, popped);
                    start = depth;
                    ++ls.hits;
                    ls.cyclesAvoided += depth;
                }
            }
        }

        uint64_t stepped_from = core.cycles();
        if (job.publishSlot >= 0) {
            VectorPlayer::drive(core, trace, start, job.publishDepth);
            cache.publish(static_cast<size_t>(job.publishSlot),
                          core.snapshot());
            VectorPlayer::drive(core, trace, job.publishDepth,
                                trace.cycles.size());
        } else {
            VectorPlayer::drive(core, trace, start,
                                trace.cycles.size());
        }
        PlayResult result = VectorPlayer::finish(config_, core, trace);
        ls.simulatedCycles += core.cycles() - stepped_from;
        ls.batchCycles += trace.cycles.size();
        results[job.bugSet * nt + job.trace] = result;

        if (is_donor) {
            // Trigger cycles are exact even when this run resumed
            // from a checkpoint: the snapshot carries the donor
            // prefix's counters, and the verified-identical stimulus
            // makes that prefix's triggers this trace's triggers.
            std::array<uint64_t, rtl::numBugs> triggers{};
            for (size_t i = 0; i < rtl::numBugs; ++i)
                triggers[i] =
                    core.bugFirstTrigger(static_cast<rtl::BugId>(i));
            donors.publish(job.trace, result, triggers);
        }

        if (result.diverged && options_.stopOnDivergence)
            fetchMin(first_div[job.bugSet], job.trace);
    };

    unsigned workers = std::min<size_t>(options_.numThreads, jobs.size());
    std::vector<LocalStats> local(std::max(1u, workers));
    if (workers <= 1) {
        for (const Job &job : jobs)
            run_one(job, local[0]);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (unsigned w = 0; w < workers; ++w) {
            pool.emplace_back([&, w] {
                while (true) {
                    size_t j = next_job.fetch_add(
                        1, std::memory_order_relaxed);
                    if (j >= jobs.size())
                        break;
                    run_one(jobs[j], local[w]);
                }
            });
        }
        for (std::thread &t : pool)
            t.join();
    }

    // Normalize early-exit batches: everything after a bug set's
    // first divergence reads as skipped, whether or not a worker got
    // to it before the divergence was known. This makes the result
    // vector a pure function of the batch for any worker count.
    if (options_.stopOnDivergence) {
        for (size_t b = 0; b < nb; ++b) {
            size_t fd = first_div[b].load(std::memory_order_acquire);
            for (size_t t = fd + 1; t < nt; ++t) {
                PlayResult &r = results[b * nt + t];
                r = PlayResult{};
                r.skipped = true;
                ++stats_.jobsSkipped;
            }
        }
    }

    for (const LocalStats &ls : local) {
        stats_.batchCycles += ls.batchCycles;
        stats_.simulatedCycles += ls.simulatedCycles;
        stats_.cyclesAvoided += ls.cyclesAvoided;
        stats_.checkpointHits += ls.hits;
        stats_.checkpointMisses += ls.misses;
        stats_.verifyFallbacks += ls.fallbacks;
        stats_.bugSetCopies += ls.copies;
    }
    stats_.checkpointsPublished = cache.published();
    stats_.cacheEvictions = cache.evictions();
    stats_.peakCacheBytes = cache.peakBytes();
    return results;
}

} // namespace archval::harness

#include "vector_player.hh"

#include "pp/ref_sim.hh"
#include "support/status.hh"
#include "support/telemetry.hh"

namespace archval::harness
{

using rtl::PpChoiceVar;

rtl::ForcedSignals
VectorPlayer::drainSignals()
{
    rtl::ForcedSignals s{};
    s[static_cast<size_t>(PpChoiceVar::FetchClass)] = 0; // ALU
    s[static_cast<size_t>(PpChoiceVar::Dual)] = 0;
    s[static_cast<size_t>(PpChoiceVar::IHit)] = 1;
    s[static_cast<size_t>(PpChoiceVar::DHit)] = 1;
    s[static_cast<size_t>(PpChoiceVar::Dirty)] = 0;
    // SameLine=1 is the safe drain value: if a load probes against a
    // still-pending store during the drain, the conflict stall drains
    // the store first, preserving sequential order for any addresses.
    s[static_cast<size_t>(PpChoiceVar::SameLine)] = 1;
    s[static_cast<size_t>(PpChoiceVar::InboxReady)] = 1;
    s[static_cast<size_t>(PpChoiceVar::OutboxReady)] = 1;
    s[static_cast<size_t>(PpChoiceVar::MemReply)] = 1;
    s[static_cast<size_t>(PpChoiceVar::BranchTaken)] = 0;
    return s;
}

unsigned
VectorPlayer::drainLength(const rtl::PpConfig &config)
{
    // Worst case: finish a refill, a spill writeback, an I-refill
    // with fix-up, a conflict, and flush three pipeline stages.
    return 4 * config.lineWords + 24;
}

void
VectorPlayer::primeCore(rtl::PpCore &core,
                        const vecgen::TestTrace &trace,
                        const rtl::BugSet &bugs)
{
    core.loadStream(trace.fetchStream);
    core.setInbox(trace.inbox);
    for (size_t b = 0; b < rtl::numBugs; ++b) {
        if (bugs.test(b))
            core.setBug(static_cast<rtl::BugId>(b), true);
    }
}

uint64_t
VectorPlayer::drive(rtl::PpCore &core, const vecgen::TestTrace &trace,
                    size_t first_cycle, size_t last_cycle,
                    const LockstepSpec *lockstep)
{
    uint64_t lockstep_errors = 0;
    for (size_t i = first_cycle; i < last_cycle; ++i) {
        core.forceSignals(trace.cycles[i]);
        core.step();
        if (lockstep) {
            // The core's control must now sit exactly on the tour
            // edge's destination state.
            rtl::PpControlState expected = lockstep->model->unpack(
                lockstep->graph->packedState(
                    lockstep->graph->edge(lockstep->tour->edges[i])
                        .dst));
            if (!(core.controlState() == expected))
                ++lockstep_errors;
        }
    }
    return lockstep_errors;
}

PlayResult
VectorPlayer::finish(const rtl::PpConfig &config, rtl::PpCore &core,
                     const vecgen::TestTrace &trace)
{
    PlayResult result;

    // Drain: complete all in-flight work; newly fetched NOPs are
    // architecturally inert, so comparison is exact even if some are
    // still in the pipe when we stop.
    const rtl::ForcedSignals drain = drainSignals();
    for (unsigned i = 0; i < drainLength(config); ++i) {
        if (core.pipeEmpty())
            break;
        core.forceSignals(drain);
        core.step();
    }
    result.drained = core.pipeEmpty();
    result.cycles = core.cycles();
    result.instructions = core.instructionsRetired();

    // Executable specification: the retired stream in order, with
    // branches as no-ops (control flow is baked into the stream).
    pp::RefSim ref(config.machine);
    ref.setStreamMode(true);
    ref.loadProgram(trace.retiredStream);
    ref.setInbox(trace.inbox);
    ref.run(trace.retiredStream.size() + 8);

    result.diff = ref.archState().diff(core.archState());
    result.diverged = !result.diff.empty();
    return result;
}

PlayResult
VectorPlayer::play(const vecgen::TestTrace &trace,
                   const rtl::BugSet &bugs) const
{
    telemetry::ScopedSpan span("player.play", "cycles",
                               trace.cycles.size());
    telemetry::counter("player.plays").add(1);
    rtl::PpCore core(config_, rtl::CoreMode::Vector);
    primeCore(core, trace, bugs);
    drive(core, trace, 0, trace.cycles.size());
    return finish(config_, core, trace);
}

PlayResult
VectorPlayer::playChecked(const rtl::PpFsmModel &model,
                          const graph::StateGraph &graph,
                          const graph::Trace &tour,
                          const vecgen::TestTrace &trace,
                          const rtl::BugSet &bugs) const
{
    if (tour.edges.size() != trace.cycles.size())
        fatal("tour and generated trace disagree on cycle count");

    telemetry::ScopedSpan span("player.play_checked", "cycles",
                               trace.cycles.size());
    telemetry::counter("player.plays").add(1);
    rtl::PpCore core(config_, rtl::CoreMode::Vector);
    primeCore(core, trace, bugs);
    LockstepSpec lockstep{&model, &graph, &tour};
    uint64_t lockstep_errors =
        drive(core, trace, 0, trace.cycles.size(), &lockstep);

    PlayResult result = finish(config_, core, trace);
    result.lockstepErrors = lockstep_errors;
    return result;
}

} // namespace archval::harness

/**
 * @file
 * Bug-detection experiments: for an injected bug, how quickly does
 * each stimulus source (transition-tour vectors, random vectors,
 * directed tests) expose it as an architectural divergence? This
 * drives the Table 2.1 reproduction and the detection-latency bench.
 */

#ifndef ARCHVAL_HARNESS_BUG_HUNT_HH
#define ARCHVAL_HARNESS_BUG_HUNT_HH

#include <functional>
#include <string>
#include <vector>

#include "harness/baselines.hh"
#include "harness/replay_engine.hh"
#include "harness/vector_player.hh"

namespace archval::harness
{

/** Detection record for one stimulus source. */
struct Detection
{
    bool detected = false;
    uint64_t instructions = 0; ///< cumulative until first divergence
    uint64_t cycles = 0;       ///< cumulative until first divergence
    std::string detail;        ///< trace/test identification + diff
};

/** Full result for one bug. */
struct HuntResult
{
    rtl::BugId bug;
    Detection tour;     ///< generated transition-tour vectors
    Detection random;   ///< biased-random stimulus (same player)
    Detection directed; ///< hand-written program suite
    Detection fuzz;     ///< coverage-guided fuzzing (optional arm)
    bool fuzzRan = false; ///< true when the fuzz arm was installed
};

/**
 * Pluggable fourth stimulus arm: a coverage-guided fuzz campaign
 * against one bug. Implemented by src/fuzz (which layers on this
 * library, hence the inversion); installed per-hunt via
 * BugHunt::setFuzzArm().
 */
using FuzzArm = std::function<Detection(rtl::BugId bug)>;

/**
 * Runs the three stimulus sources against an injected bug.
 */
class BugHunt
{
  public:
    /**
     * @param config Machine configuration.
     * @param model Enumerated FSM model (for vector generation).
     * @param graph Enumerated state graph.
     * @param tour_traces Transition-tour test traces (pre-generated).
     * @param replay Replay-engine tuning (worker count, checkpoint
     *        budget) for the tour and random arms. Results are
     *        byte-identical to the sequential player regardless.
     */
    BugHunt(const rtl::PpConfig &config, const rtl::PpFsmModel &model,
            const graph::StateGraph &graph,
            const std::vector<vecgen::TestTrace> &tour_traces,
            ReplayOptions replay = {});

    /**
     * Hunt @p bug.
     *
     * @param random_budget Instruction budget for the random source.
     * @param seed Random-walk seed.
     */
    HuntResult hunt(rtl::BugId bug, uint64_t random_budget,
                    uint64_t seed = 12345);

    /** Install (or clear) the coverage-guided fuzz arm. */
    void setFuzzArm(FuzzArm arm) { fuzzArm_ = std::move(arm); }

    /**
     * Install (or clear) a cross-hunt warm cache. With a cache
     * installed the tour arm plays {bug-free, bug} instead of just
     * {bug}: the first hunt's bug-free donor block deposits every
     * tour trace's result and stride-checkpoint chain in the cache,
     * and each later hunt's donor block collapses to warm copies —
     * the donor chain stays alive across hunt() calls, so a
     * triggered bug resumes from the checkpoint tier instead of
     * replaying the bug-free lead from reset. Opt in deliberately:
     * the first hunt pays for the donor block (a second pass over
     * the tour corpus). Detection results are unchanged either way.
     */
    void setWarmCache(std::shared_ptr<ReplayWarmCache> cache)
    {
        warmCache_ = std::move(cache);
    }

  private:
    rtl::PpConfig config_;
    const rtl::PpFsmModel &model_;
    const graph::StateGraph &graph_;
    const std::vector<vecgen::TestTrace> &tourTraces_;
    ReplayOptions replay_;
    FuzzArm fuzzArm_;
    std::shared_ptr<ReplayWarmCache> warmCache_;
};

/** Render hunt results as the bench table. */
std::string renderHuntTable(const std::vector<HuntResult> &results);

} // namespace archval::harness

#endif // ARCHVAL_HARNESS_BUG_HUNT_HH

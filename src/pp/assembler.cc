#include "assembler.hh"

#include <map>

#include "pp/isa.hh"
#include "support/strings.hh"

namespace archval::pp
{

namespace
{

/** Tokenized line: mnemonic plus comma/space separated operands. */
struct Line
{
    size_t number; ///< 1-based source line
    std::string mnemonic;
    std::vector<std::string> operands;
};

/** Strip comments, split labels out, tokenize instructions. */
Result<std::pair<std::vector<Line>, std::map<std::string, uint32_t>>>
scan(const std::string &source)
{
    using Out = std::pair<std::vector<Line>, std::map<std::string, uint32_t>>;
    std::vector<Line> lines;
    std::map<std::string, uint32_t> labels;

    size_t line_no = 0;
    for (auto &raw : splitString(source, '\n')) {
        ++line_no;
        std::string text = raw;
        for (char marker : {';', '#'}) {
            size_t pos = text.find(marker);
            if (pos != std::string::npos)
                text = text.substr(0, pos);
        }
        text = trimString(text);
        if (text.empty())
            continue;

        // Leading labels (possibly several on one line).
        for (;;) {
            size_t colon = text.find(':');
            if (colon == std::string::npos)
                break;
            std::string label = trimString(text.substr(0, colon));
            if (label.empty() || label.find(' ') != std::string::npos) {
                return Result<Out>::error(formatString(
                    "line %zu: malformed label", line_no));
            }
            if (labels.count(label)) {
                return Result<Out>::error(formatString(
                    "line %zu: duplicate label '%s'", line_no,
                    label.c_str()));
            }
            labels[label] = static_cast<uint32_t>(lines.size());
            text = trimString(text.substr(colon + 1));
        }
        if (text.empty())
            continue;

        Line line;
        line.number = line_no;
        size_t space = text.find_first_of(" \t");
        line.mnemonic = text.substr(0, space);
        if (space != std::string::npos) {
            std::string rest = text.substr(space + 1);
            for (auto &field : splitString(rest, ',')) {
                std::string operand = trimString(field);
                if (!operand.empty())
                    line.operands.push_back(operand);
            }
        }
        lines.push_back(std::move(line));
    }
    return Out{std::move(lines), std::move(labels)};
}

/** Parse "rN". */
Result<unsigned>
parseReg(const std::string &token, size_t line_no)
{
    if (token.size() < 2 || (token[0] != 'r' && token[0] != 'R')) {
        return Result<unsigned>::error(formatString(
            "line %zu: expected register, got '%s'", line_no,
            token.c_str()));
    }
    char *end = nullptr;
    long value = std::strtol(token.c_str() + 1, &end, 10);
    if (*end != '\0' || value < 0 || value > 31) {
        return Result<unsigned>::error(formatString(
            "line %zu: bad register '%s'", line_no, token.c_str()));
    }
    return static_cast<unsigned>(value);
}

/** Parse a signed immediate (decimal or 0x hex). */
Result<long>
parseImm(const std::string &token, size_t line_no)
{
    char *end = nullptr;
    long value = std::strtol(token.c_str(), &end, 0);
    if (end == token.c_str() || *end != '\0') {
        return Result<long>::error(formatString(
            "line %zu: bad immediate '%s'", line_no, token.c_str()));
    }
    return value;
}

/** Parse "imm(rN)" memory operand. */
Result<std::pair<long, unsigned>>
parseMem(const std::string &token, size_t line_no)
{
    using Out = std::pair<long, unsigned>;
    size_t open = token.find('(');
    size_t close = token.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open) {
        return Result<Out>::error(formatString(
            "line %zu: expected offset(reg), got '%s'", line_no,
            token.c_str()));
    }
    std::string trimmed = trimString(token.substr(0, open));
    const std::string imm_text = trimmed.empty() ? std::string("0")
                                                 : std::move(trimmed);
    auto imm = parseImm(imm_text, line_no);
    if (!imm.ok())
        return Result<Out>::error(imm.errorMessage());
    auto reg = parseReg(
        trimString(token.substr(open + 1, close - open - 1)), line_no);
    if (!reg.ok())
        return Result<Out>::error(reg.errorMessage());
    return Out{imm.value(), reg.value()};
}

} // namespace

Result<std::vector<uint32_t>>
assemble(const std::string &source)
{
    using Out = std::vector<uint32_t>;
    auto scanned = scan(source);
    if (!scanned.ok())
        return Result<Out>::error(scanned.errorMessage());
    const auto &[lines, labels] = scanned.value();

    auto err = [](size_t line_no, const std::string &msg) {
        return Result<Out>::error(
            formatString("line %zu: %s", line_no, msg.c_str()));
    };

    auto resolve = [&](const std::string &token, uint32_t here,
                       size_t line_no) -> Result<long> {
        auto it = labels.find(token);
        if (it != labels.end()) {
            // Branch offsets are relative to the next instruction.
            return static_cast<long>(it->second) -
                   static_cast<long>(here) - 1;
        }
        return parseImm(token, line_no);
    };

    std::vector<uint32_t> words;
    for (const Line &line : lines) {
        const auto &m = line.mnemonic;
        const auto &ops = line.operands;
        const size_t no = line.number;
        const uint32_t here = static_cast<uint32_t>(words.size());

        auto need = [&](size_t count) {
            return ops.size() == count;
        };

        if (m == "nop") {
            words.push_back(encodeNop());
        } else if (m == "halt") {
            words.push_back(encodeHalt());
        } else if (m == "add" || m == "sub" || m == "and" || m == "or" ||
                   m == "xor" || m == "slt") {
            if (!need(3))
                return err(no, m + " needs rd, rs, rt");
            auto rd = parseReg(ops[0], no);
            auto rs = parseReg(ops[1], no);
            auto rt = parseReg(ops[2], no);
            if (!rd.ok() || !rs.ok() || !rt.ok())
                return err(no, "bad register operand");
            Funct funct = m == "add"   ? Funct::Add
                          : m == "sub" ? Funct::Sub
                          : m == "and" ? Funct::And
                          : m == "or"  ? Funct::Or
                          : m == "xor" ? Funct::Xor
                                       : Funct::Slt;
            words.push_back(encodeRType(funct, rd.value(), rs.value(),
                                        rt.value()));
        } else if (m == "sll" || m == "srl" || m == "sra") {
            if (!need(3))
                return err(no, m + " needs rd, rt, shamt");
            auto rd = parseReg(ops[0], no);
            auto rt = parseReg(ops[1], no);
            auto sh = parseImm(ops[2], no);
            if (!rd.ok() || !rt.ok() || !sh.ok())
                return err(no, "bad operand");
            Funct funct = m == "sll"   ? Funct::Sll
                          : m == "srl" ? Funct::Srl
                                       : Funct::Sra;
            words.push_back(encodeRType(funct, rd.value(), 0, rt.value(),
                                        static_cast<unsigned>(
                                            sh.value() & 0x1f)));
        } else if (m == "addi" || m == "slti" || m == "andi" ||
                   m == "ori" || m == "xori") {
            if (!need(3))
                return err(no, m + " needs rt, rs, imm");
            auto rt = parseReg(ops[0], no);
            auto rs = parseReg(ops[1], no);
            auto imm = parseImm(ops[2], no);
            if (!rt.ok() || !rs.ok() || !imm.ok())
                return err(no, "bad operand");
            Opcode op = m == "addi"   ? Opcode::Addi
                        : m == "slti" ? Opcode::Slti
                        : m == "andi" ? Opcode::Andi
                        : m == "ori"  ? Opcode::Ori
                                      : Opcode::Xori;
            words.push_back(encodeIType(op, rt.value(), rs.value(),
                                        static_cast<int16_t>(
                                            imm.value())));
        } else if (m == "lui") {
            if (!need(2))
                return err(no, "lui needs rt, imm");
            auto rt = parseReg(ops[0], no);
            auto imm = parseImm(ops[1], no);
            if (!rt.ok() || !imm.ok())
                return err(no, "bad operand");
            words.push_back(encodeIType(Opcode::Lui, rt.value(), 0,
                                        static_cast<int16_t>(
                                            imm.value())));
        } else if (m == "lw" || m == "sw") {
            if (!need(2))
                return err(no, m + " needs rt, offset(base)");
            auto rt = parseReg(ops[0], no);
            auto mem = parseMem(ops[1], no);
            if (!rt.ok() || !mem.ok())
                return err(no, "bad operand");
            auto [offset, base] = mem.value();
            uint32_t word = m == "lw"
                ? encodeLw(rt.value(), base,
                           static_cast<int16_t>(offset))
                : encodeSw(rt.value(), base,
                           static_cast<int16_t>(offset));
            words.push_back(word);
        } else if (m == "switch") {
            if (!need(1))
                return err(no, "switch needs rd");
            auto rd = parseReg(ops[0], no);
            if (!rd.ok())
                return err(no, "bad register");
            words.push_back(encodeSwitch(rd.value()));
        } else if (m == "send") {
            if (!need(1))
                return err(no, "send needs rs");
            auto rs = parseReg(ops[0], no);
            if (!rs.ok())
                return err(no, "bad register");
            words.push_back(encodeSend(rs.value()));
        } else if (m == "beq" || m == "bne") {
            if (!need(3))
                return err(no, m + " needs rs, rt, target");
            auto rs = parseReg(ops[0], no);
            auto rt = parseReg(ops[1], no);
            auto off = resolve(ops[2], here, no);
            if (!rs.ok() || !rt.ok() || !off.ok())
                return err(no, "bad operand");
            words.push_back(encodeBranch(
                m == "beq" ? Opcode::Beq : Opcode::Bne, rs.value(),
                rt.value(), static_cast<int16_t>(off.value())));
        } else if (m == "j") {
            if (!need(1))
                return err(no, "j needs target");
            long target;
            auto it = labels.find(ops[0]);
            if (it != labels.end()) {
                target = it->second;
            } else {
                auto imm = parseImm(ops[0], no);
                if (!imm.ok())
                    return err(no, "bad jump target");
                target = imm.value();
            }
            words.push_back(
                encodeJump(static_cast<uint32_t>(target)));
        } else {
            return err(no, "unknown mnemonic '" + m + "'");
        }
    }
    return words;
}

std::string
disassemble(const std::vector<uint32_t> &words)
{
    std::string out;
    for (size_t i = 0; i < words.size(); ++i) {
        out += formatString("%4zu: %s\n", i,
                            decode(words[i]).toString().c_str());
    }
    return out;
}

} // namespace archval::pp

#include "ref_sim.hh"

#include "support/status.hh"
#include "support/strings.hh"

namespace archval::pp
{

std::string
ArchState::diff(const ArchState &other) const
{
    for (size_t i = 0; i < regs.size() && i < other.regs.size(); ++i) {
        if (regs[i] != other.regs[i]) {
            return formatString("r%zu: 0x%08x vs 0x%08x", i, regs[i],
                                other.regs[i]);
        }
    }
    if (regs.size() != other.regs.size())
        return "register file size mismatch";
    for (size_t i = 0; i < dmem.size() && i < other.dmem.size(); ++i) {
        if (dmem[i] != other.dmem[i]) {
            return formatString("dmem[%zu]: 0x%08x vs 0x%08x", i,
                                dmem[i], other.dmem[i]);
        }
    }
    if (dmem.size() != other.dmem.size())
        return "data memory size mismatch";
    if (outbox.size() != other.outbox.size()) {
        return formatString("outbox length %zu vs %zu", outbox.size(),
                            other.outbox.size());
    }
    for (size_t i = 0; i < outbox.size(); ++i) {
        if (outbox[i] != other.outbox[i]) {
            return formatString("outbox[%zu]: 0x%08x vs 0x%08x", i,
                                outbox[i], other.outbox[i]);
        }
    }
    return "";
}

RefSim::RefSim(const MachineConfig &config)
    : config_(config), regs_(32, 0), dmem_(config.dmemWords, 0)
{
    if (config_.dmemWords == 0 ||
        (config_.dmemWords & (config_.dmemWords - 1)) != 0)
        fatal("dmemWords must be a power of two");
}

size_t
RefSim::Snapshot::bytes() const
{
    if (!state_)
        return 0;
    return sizeof(RefSim) +
           state_->program_.capacity() * sizeof(uint32_t) +
           state_->regs_.capacity() * sizeof(uint32_t) +
           state_->dmem_.capacity() * sizeof(uint32_t) +
           state_->inbox_.size() * sizeof(uint32_t) +
           state_->outbox_.capacity() * sizeof(uint32_t);
}

uint64_t
RefSim::Snapshot::instructionsRetired() const
{
    return state_ ? state_->retired_ : 0;
}

RefSim::Snapshot
RefSim::snapshot() const
{
    // Value-semantic members only: a copy of the whole simulator is a
    // bit-exact checkpoint by construction.
    Snapshot snap;
    snap.state_ = std::make_shared<const RefSim>(*this);
    return snap;
}

void
RefSim::restore(const Snapshot &snap)
{
    if (!snap.valid())
        fatal("restore from an empty snapshot");
    if (snap.state_->config_.dmemWords != config_.dmemWords)
        fatal("snapshot/simulator config mismatch");
    *this = *snap.state_;
}

void
RefSim::loadProgram(std::vector<uint32_t> program)
{
    program_ = std::move(program);
    regs_.assign(32, 0);
    dmem_.assign(config_.dmemWords, 0);
    outbox_.clear();
    pc_ = 0;
    retired_ = 0;
    stopped_ = false;
    stopReason_ = StopReason::RanOffEnd;
}

void
RefSim::setInbox(std::deque<uint32_t> inbox)
{
    inbox_ = std::move(inbox);
}

void
RefSim::pokeDmem(uint32_t word_index, uint32_t value)
{
    dmem_[word_index % config_.dmemWords] = value;
}

void
RefSim::writeReg(unsigned index, uint32_t value)
{
    if ((index & 31) != 0)
        regs_[index & 31] = value;
}

bool
RefSim::step()
{
    if (stopped_)
        return false;
    if (pc_ >= program_.size()) {
        stopped_ = true;
        stopReason_ = StopReason::RanOffEnd;
        return false;
    }

    DecodedInstr d = decode(program_[pc_]);
    uint32_t next_pc = pc_ + 1;
    uint32_t rs = regs_[d.rs];
    uint32_t rt = regs_[d.rt];

    switch (d.op) {
      case Opcode::Special:
        switch (d.funct) {
          case Funct::Sll:
            writeReg(d.rd, rt << d.shamt);
            break;
          case Funct::Srl:
            writeReg(d.rd, rt >> d.shamt);
            break;
          case Funct::Sra:
            writeReg(d.rd, static_cast<uint32_t>(
                               static_cast<int32_t>(rt) >> d.shamt));
            break;
          case Funct::Add:
            writeReg(d.rd, rs + rt);
            break;
          case Funct::Sub:
            writeReg(d.rd, rs - rt);
            break;
          case Funct::And:
            writeReg(d.rd, rs & rt);
            break;
          case Funct::Or:
            writeReg(d.rd, rs | rt);
            break;
          case Funct::Xor:
            writeReg(d.rd, rs ^ rt);
            break;
          case Funct::Slt:
            writeReg(d.rd, static_cast<int32_t>(rs) <
                               static_cast<int32_t>(rt));
            break;
        }
        break;
      case Opcode::Addi:
        writeReg(d.rt, rs + static_cast<uint32_t>(
                                static_cast<int32_t>(d.imm)));
        break;
      case Opcode::Slti:
        writeReg(d.rt, static_cast<int32_t>(rs) <
                           static_cast<int32_t>(d.imm));
        break;
      case Opcode::Andi:
        writeReg(d.rt, rs & static_cast<uint16_t>(d.imm));
        break;
      case Opcode::Ori:
        writeReg(d.rt, rs | static_cast<uint16_t>(d.imm));
        break;
      case Opcode::Xori:
        writeReg(d.rt, rs ^ static_cast<uint16_t>(d.imm));
        break;
      case Opcode::Lui:
        writeReg(d.rt, static_cast<uint32_t>(
                           static_cast<uint16_t>(d.imm)) << 16);
        break;
      case Opcode::Lw: {
        uint32_t addr = (rs + static_cast<uint32_t>(
                                  static_cast<int32_t>(d.imm))) &
                        config_.dmemByteMask();
        writeReg(d.rt, dmem_[addr / 4]);
        break;
      }
      case Opcode::Sw: {
        uint32_t addr = (rs + static_cast<uint32_t>(
                                  static_cast<int32_t>(d.imm))) &
                        config_.dmemByteMask();
        dmem_[addr / 4] = rt;
        break;
      }
      case Opcode::Switch:
        if (inbox_.empty()) {
            stopped_ = true;
            stopReason_ = StopReason::InboxEmpty;
            return false;
        }
        writeReg(d.rt, inbox_.front());
        inbox_.pop_front();
        break;
      case Opcode::Send:
        outbox_.push_back(rs);
        break;
      case Opcode::Beq:
        if (!streamMode_ && rs == rt)
            next_pc = pc_ + 1 + static_cast<uint32_t>(
                                    static_cast<int32_t>(d.imm));
        break;
      case Opcode::Bne:
        if (!streamMode_ && rs != rt)
            next_pc = pc_ + 1 + static_cast<uint32_t>(
                                    static_cast<int32_t>(d.imm));
        break;
      case Opcode::J:
        if (!streamMode_)
            next_pc = d.target;
        break;
      case Opcode::Halt:
        stopped_ = true;
        stopReason_ = StopReason::Halted;
        ++retired_;
        return false;
    }

    pc_ = next_pc;
    ++retired_;
    return true;
}

StopReason
RefSim::run(uint64_t max_steps)
{
    for (uint64_t i = 0; i < max_steps; ++i) {
        if (!step())
            return stopReason_;
    }
    stopped_ = true;
    stopReason_ = StopReason::StepLimit;
    return stopReason_;
}

ArchState
RefSim::archState() const
{
    ArchState state;
    state.regs = regs_;
    state.dmem = dmem_;
    state.outbox = outbox_;
    return state;
}

} // namespace archval::pp

/**
 * @file
 * Two-pass assembler for the PP ISA.
 *
 * Accepts the mnemonics produced by DecodedInstr::toString plus
 * labels ("name:") and comments ("; ..." or "# ..."). Used by the
 * example programs and the directed-test baseline suite.
 */

#ifndef ARCHVAL_PP_ASSEMBLER_HH
#define ARCHVAL_PP_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.hh"

namespace archval::pp
{

/**
 * Assemble @p source into instruction words.
 *
 * @param source Full program text, one instruction or label per line.
 * @return the instruction words, or an error naming the bad line.
 */
Result<std::vector<uint32_t>> assemble(const std::string &source);

/** Disassemble @p words into one mnemonic per line. */
std::string disassemble(const std::vector<uint32_t> &words);

} // namespace archval::pp

#endif // ARCHVAL_PP_ASSEMBLER_HH

#include "isa.hh"

#include "support/status.hh"
#include "support/strings.hh"

namespace archval::pp
{

const char *
instrClassName(InstrClass cls)
{
    switch (cls) {
      case InstrClass::None:
        return "NONE";
      case InstrClass::Alu:
        return "ALU";
      case InstrClass::Load:
        return "LD";
      case InstrClass::Store:
        return "SD";
      case InstrClass::Switch:
        return "SWITCH";
      case InstrClass::Send:
        return "SEND";
      case InstrClass::Branch:
        return "BR";
    }
    return "?";
}

InstrClass
DecodedInstr::cls() const
{
    switch (op) {
      case Opcode::Lw:
        return InstrClass::Load;
      case Opcode::Sw:
        return InstrClass::Store;
      case Opcode::Switch:
        return InstrClass::Switch;
      case Opcode::Send:
        return InstrClass::Send;
      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::J:
        return InstrClass::Branch;
      default:
        // HALT behaves as ALU for the control logic: it only stops
        // the test, it causes no stall of its own.
        return InstrClass::Alu;
    }
}

bool
DecodedInstr::isNop() const
{
    return op == Opcode::Special && funct == Funct::Sll && rd == 0 &&
           rt == 0 && shamt == 0;
}

std::string
DecodedInstr::toString() const
{
    switch (op) {
      case Opcode::Special:
        switch (funct) {
          case Funct::Sll:
            if (isNop())
                return "nop";
            return formatString("sll r%u, r%u, %u", rd, rt, shamt);
          case Funct::Srl:
            return formatString("srl r%u, r%u, %u", rd, rt, shamt);
          case Funct::Sra:
            return formatString("sra r%u, r%u, %u", rd, rt, shamt);
          case Funct::Add:
            return formatString("add r%u, r%u, r%u", rd, rs, rt);
          case Funct::Sub:
            return formatString("sub r%u, r%u, r%u", rd, rs, rt);
          case Funct::And:
            return formatString("and r%u, r%u, r%u", rd, rs, rt);
          case Funct::Or:
            return formatString("or r%u, r%u, r%u", rd, rs, rt);
          case Funct::Xor:
            return formatString("xor r%u, r%u, r%u", rd, rs, rt);
          case Funct::Slt:
            return formatString("slt r%u, r%u, r%u", rd, rs, rt);
        }
        return "special?";
      case Opcode::J:
        return formatString("j %u", target);
      case Opcode::Beq:
        return formatString("beq r%u, r%u, %d", rs, rt, imm);
      case Opcode::Bne:
        return formatString("bne r%u, r%u, %d", rs, rt, imm);
      case Opcode::Addi:
        return formatString("addi r%u, r%u, %d", rt, rs, imm);
      case Opcode::Slti:
        return formatString("slti r%u, r%u, %d", rt, rs, imm);
      case Opcode::Andi:
        return formatString("andi r%u, r%u, %d", rt, rs, imm);
      case Opcode::Ori:
        return formatString("ori r%u, r%u, %d", rt, rs, imm);
      case Opcode::Xori:
        return formatString("xori r%u, r%u, %d", rt, rs, imm);
      case Opcode::Lui:
        return formatString("lui r%u, %d", rt, imm);
      case Opcode::Switch:
        return formatString("switch r%u", rt);
      case Opcode::Send:
        return formatString("send r%u", rs);
      case Opcode::Lw:
        return formatString("lw r%u, %d(r%u)", rt, imm, rs);
      case Opcode::Sw:
        return formatString("sw r%u, %d(r%u)", rt, imm, rs);
      case Opcode::Halt:
        return "halt";
    }
    return "?";
}

DecodedInstr
decode(uint32_t word)
{
    DecodedInstr d;
    d.op = static_cast<Opcode>((word >> 26) & 0x3f);
    d.rs = static_cast<uint8_t>((word >> 21) & 0x1f);
    d.rt = static_cast<uint8_t>((word >> 16) & 0x1f);
    d.rd = static_cast<uint8_t>((word >> 11) & 0x1f);
    d.shamt = static_cast<uint8_t>((word >> 6) & 0x1f);
    d.funct = static_cast<Funct>(word & 0x3f);
    d.imm = static_cast<int16_t>(word & 0xffff);
    d.target = word & 0x03ffffff;
    return d;
}

uint32_t
encode(const DecodedInstr &d)
{
    uint32_t word = static_cast<uint32_t>(d.op) << 26;
    if (d.op == Opcode::Special) {
        word |= uint32_t(d.rs) << 21;
        word |= uint32_t(d.rt) << 16;
        word |= uint32_t(d.rd) << 11;
        word |= uint32_t(d.shamt) << 6;
        word |= static_cast<uint32_t>(d.funct);
    } else if (d.op == Opcode::J) {
        word |= d.target & 0x03ffffff;
    } else {
        word |= uint32_t(d.rs) << 21;
        word |= uint32_t(d.rt) << 16;
        word |= static_cast<uint16_t>(d.imm);
    }
    return word;
}

uint32_t
encodeRType(Funct funct, unsigned rd, unsigned rs, unsigned rt,
            unsigned shamt)
{
    DecodedInstr d;
    d.op = Opcode::Special;
    d.funct = funct;
    d.rd = static_cast<uint8_t>(rd & 0x1f);
    d.rs = static_cast<uint8_t>(rs & 0x1f);
    d.rt = static_cast<uint8_t>(rt & 0x1f);
    d.shamt = static_cast<uint8_t>(shamt & 0x1f);
    return encode(d);
}

uint32_t
encodeIType(Opcode op, unsigned rt, unsigned rs, int16_t imm)
{
    DecodedInstr d;
    d.op = op;
    d.rt = static_cast<uint8_t>(rt & 0x1f);
    d.rs = static_cast<uint8_t>(rs & 0x1f);
    d.imm = imm;
    return encode(d);
}

uint32_t
encodeLw(unsigned rt, unsigned base, int16_t offset)
{
    return encodeIType(Opcode::Lw, rt, base, offset);
}

uint32_t
encodeSw(unsigned rt, unsigned base, int16_t offset)
{
    return encodeIType(Opcode::Sw, rt, base, offset);
}

uint32_t
encodeSwitch(unsigned rd)
{
    // SWITCH carries its destination register in the I-type rt field.
    return encodeIType(Opcode::Switch, rd, 0, 0);
}

uint32_t
encodeSend(unsigned rs)
{
    return encodeIType(Opcode::Send, 0, rs, 0);
}

uint32_t
encodeBranch(Opcode op, unsigned rs, unsigned rt, int16_t offset)
{
    if (op != Opcode::Beq && op != Opcode::Bne)
        panic("encodeBranch: not a branch opcode");
    return encodeIType(op, rt, rs, offset);
}

uint32_t
encodeJump(uint32_t target_word)
{
    DecodedInstr d;
    d.op = Opcode::J;
    d.target = target_word & 0x03ffffff;
    return encode(d);
}

uint32_t
encodeHalt()
{
    DecodedInstr d;
    d.op = Opcode::Halt;
    return encode(d);
}

uint32_t
encodeNop()
{
    return encodeRType(Funct::Sll, 0, 0, 0, 0);
}

InstrClass
classOfWord(uint32_t word)
{
    return decode(word).cls();
}

} // namespace archval::pp

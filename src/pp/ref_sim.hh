/**
 * @file
 * Instruction-level reference simulator — the "executable
 * specification" of Figure 3.1.
 *
 * Executes PP programs with sequential semantics, ignoring all timing
 * (caches, stalls, dual issue). Its architectural state after a run is
 * the oracle the RTL model is compared against: the paper detects
 * bugs as "data value differences between the implementation and the
 * specification".
 */

#ifndef ARCHVAL_PP_REF_SIM_HH
#define ARCHVAL_PP_REF_SIM_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "pp/isa.hh"

namespace archval::pp
{

/** Architectural state snapshot used for implementation comparison. */
struct ArchState
{
    std::vector<uint32_t> regs;   ///< r0..r31 (r0 always 0)
    std::vector<uint32_t> dmem;   ///< data memory words
    std::vector<uint32_t> outbox; ///< words sent to the Outbox

    bool operator==(const ArchState &other) const = default;

    /**
     * @return a description of the first difference against
     * @p other, or an empty string when equal.
     */
    std::string diff(const ArchState &other) const;
};

/** Run-termination reason. */
enum class StopReason
{
    Halted,      ///< executed HALT
    RanOffEnd,   ///< PC left the program
    StepLimit,   ///< hit the step budget
    InboxEmpty,  ///< SWITCH with no inbox data left
};

/** Configuration shared by the reference and RTL models. */
struct MachineConfig
{
    uint32_t dmemWords = 4096; ///< data memory size in words

    /** @return byte-address mask that keeps accesses in dmem. */
    uint32_t dmemByteMask() const { return dmemWords * 4 - 1; }
};

/**
 * Sequential interpreter for PP programs.
 */
class RefSim
{
  public:
    /** @param config Machine parameters (must match the RTL model). */
    explicit RefSim(const MachineConfig &config = {});

    /** Load @p program and reset architectural state. */
    void loadProgram(std::vector<uint32_t> program);

    /**
     * Stream mode: the program is a pre-resolved dynamic instruction
     * stream (as produced by the vector generator), so branches and
     * jumps are architectural no-ops — control flow is already baked
     * into the stream order.
     */
    void setStreamMode(bool stream) { streamMode_ = stream; }

    /** Provide the Inbox contents consumed by SWITCH instructions. */
    void setInbox(std::deque<uint32_t> inbox);

    /** Initialize a data-memory word (test preconditioning). */
    void pokeDmem(uint32_t word_index, uint32_t value);

    /**
     * Execute one instruction.
     * @return false when the machine has stopped.
     */
    bool step();

    /**
     * Run until HALT, end of program, or @p max_steps.
     * @return the termination reason.
     */
    StopReason run(uint64_t max_steps = 1'000'000);

    /** @return why the last run stopped. */
    StopReason stopReason() const { return stopReason_; }

    /** @return the architectural state. */
    ArchState archState() const;

    /** @return current program counter (word index). */
    uint32_t pc() const { return pc_; }

    /** @return number of instructions retired so far. */
    uint64_t instructionsRetired() const { return retired_; }

    /** @return register @p index. */
    uint32_t reg(unsigned index) const { return regs_[index & 31]; }

    /** @name Checkpointing (value-semantics snapshots) @{ */
    /** Bit-exact checkpoint of the whole simulator state. */
    class Snapshot
    {
      public:
        Snapshot() = default;
        /** @return true when this snapshot holds a state. */
        bool valid() const { return state_ != nullptr; }
        /** @return approximate heap+object footprint in bytes. */
        size_t bytes() const;
        /** @return instructions retired at capture time. */
        uint64_t instructionsRetired() const;

      private:
        friend class RefSim;
        std::shared_ptr<const RefSim> state_;
    };

    /** @return a bit-exact checkpoint of the current state. */
    Snapshot snapshot() const;

    /** Resume from @p snap (same machine config required). */
    void restore(const Snapshot &snap);
    /** @} */

  private:
    MachineConfig config_;
    std::vector<uint32_t> program_;
    std::vector<uint32_t> regs_;
    std::vector<uint32_t> dmem_;
    std::deque<uint32_t> inbox_;
    std::vector<uint32_t> outbox_;
    uint32_t pc_ = 0;
    uint64_t retired_ = 0;
    bool stopped_ = false;
    bool streamMode_ = false;
    StopReason stopReason_ = StopReason::RanOffEnd;

    void writeReg(unsigned index, uint32_t value);
};

} // namespace archval::pp

#endif // ARCHVAL_PP_REF_SIM_HH

/**
 * @file
 * Instruction set of the FLASH Protocol Processor model.
 *
 * The PP is a DLX-based dual-issue RISC core (paper Section 2). The
 * ISA here is a faithful functional stand-in: a MIPS-like 32-bit
 * encoding with the MAGIC-specific SWITCH and SEND instructions that
 * communicate with the Inbox and Outbox. The control logic only
 * distinguishes the five instruction classes of Table 3.1 (plus
 * branches, the paper's announced extension, which are modeled behind
 * a feature flag).
 */

#ifndef ARCHVAL_PP_ISA_HH
#define ARCHVAL_PP_ISA_HH

#include <cstdint>
#include <optional>
#include <string>

namespace archval::pp
{

/**
 * Instruction classes as seen by the control logic (Table 3.1).
 *
 * "None" marks a pipeline bubble; it never appears in a program.
 */
enum class InstrClass : uint8_t
{
    None = 0,   ///< pipeline bubble (no instruction)
    Alu = 1,    ///< no control effect (PP has no exceptions)
    Load = 2,   ///< can transition load/store FSMs
    Store = 3,  ///< can transition load/store FSMs
    Switch = 4, ///< stalls when the Inbox is not ready
    Send = 5,   ///< stalls when the Outbox is not ready
    Branch = 6, ///< squashing branch (extension; see Section 4)
};

/** Number of classes usable in programs (excludes None). */
constexpr unsigned numProgramClasses = 6;

/** @return printable class name. */
const char *instrClassName(InstrClass cls);

/** Primary opcodes (bits [31:26]). */
enum class Opcode : uint8_t
{
    Special = 0, ///< R-type ALU; funct selects the operation
    J = 2,
    Beq = 4,
    Bne = 5,
    Addi = 8,
    Slti = 10,
    Andi = 12,
    Ori = 13,
    Xori = 14,
    Lui = 15,
    Switch = 16, ///< rd <- next Inbox word
    Send = 17,   ///< Outbox <- rs
    Lw = 35,
    Sw = 43,
    Halt = 63,
};

/** R-type function codes (bits [5:0] under Opcode::Special). */
enum class Funct : uint8_t
{
    Sll = 0,
    Srl = 2,
    Sra = 3,
    Add = 32,
    Sub = 34,
    And = 36,
    Or = 37,
    Xor = 38,
    Slt = 42,
};

/** Fields of a decoded instruction. */
struct DecodedInstr
{
    Opcode op = Opcode::Special;
    Funct funct = Funct::Add;
    uint8_t rs = 0;  ///< first source register
    uint8_t rt = 0;  ///< second source / I-type destination
    uint8_t rd = 0;  ///< R-type destination
    uint8_t shamt = 0;
    int16_t imm = 0;   ///< sign-extended I-type immediate
    uint32_t target = 0; ///< J-type target (word index)

    /** @return the control-logic class of this instruction. */
    InstrClass cls() const;

    /** @return true for the NOP encoding (sll r0, r0, 0). */
    bool isNop() const;

    /** @return a disassembly string. */
    std::string toString() const;
};

/** Decode a 32-bit instruction word. */
DecodedInstr decode(uint32_t word);

/** Encode a decoded instruction back to its 32-bit word. */
uint32_t encode(const DecodedInstr &instr);

/** Convenience encoders. @{ */
uint32_t encodeRType(Funct funct, unsigned rd, unsigned rs, unsigned rt,
                     unsigned shamt = 0);
uint32_t encodeIType(Opcode op, unsigned rt, unsigned rs, int16_t imm);
uint32_t encodeLw(unsigned rt, unsigned base, int16_t offset);
uint32_t encodeSw(unsigned rt, unsigned base, int16_t offset);
uint32_t encodeSwitch(unsigned rd);
uint32_t encodeSend(unsigned rs);
uint32_t encodeBranch(Opcode op, unsigned rs, unsigned rt, int16_t offset);
uint32_t encodeJump(uint32_t target_word);
uint32_t encodeHalt();
uint32_t encodeNop();
/** @} */

/** @return the class of an encoded instruction word. */
InstrClass classOfWord(uint32_t word);

} // namespace archval::pp

#endif // ARCHVAL_PP_ISA_HH

/**
 * @file
 * Synchronous FSM model interface — the central IR of the library.
 *
 * A Model is the "Synchronous Murphi" view of a design: a set of
 * latched state variables packed into a bit vector, advanced once per
 * implicit clock by a next-state function, with the environment
 * (abstract datapath, abstract interface units) injecting a tuple of
 * nondeterministic choices each cycle. The explicit-state enumerator
 * (murphi::Enumerator) explores every choice tuple from every reached
 * state, exactly as the paper describes in Section 3.2.
 *
 * Two producers implement this interface:
 *  - fsm::HdlModel, built by translating annotated mini-Verilog
 *    (Section 3.1's translator), and
 *  - fsm::PpFsmModel, the programmatic FSM network of the FLASH
 *    Protocol Processor control (Figure 3.2), sharing its next-state
 *    logic with the cycle-accurate RTL model.
 */

#ifndef ARCHVAL_FSM_MODEL_HH
#define ARCHVAL_FSM_MODEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/bitvec.hh"

namespace archval::compile
{
struct FsmSpec; // see compile/fsm_spec.hh
}

namespace archval::fsm
{

/** Description of one latched state variable (for layout and debug). */
struct StateVarInfo
{
    std::string name;   ///< hierarchical name, e.g. "dcache.refill"
    size_t numBits;     ///< width of the packed field
    uint64_t resetValue; ///< value at the given reset state
};

/**
 * Description of one nondeterministic choice variable.
 *
 * Each cycle the environment picks a value in [0, cardinality). These
 * correspond to the paper's abstract blocks that "non-deterministically
 * choose one of several possible actions".
 */
struct ChoiceVarInfo
{
    std::string name;   ///< e.g. "icache.hit", "pipe.fetch_class"
    uint32_t cardinality; ///< number of alternative actions
};

/** One concrete choice tuple: a value per choice variable. */
using Choice = std::vector<uint32_t>;

/**
 * Mixed-radix codec between a Choice tuple and a single uint64 code.
 *
 * Edge labels in the state graph store the packed code; the vector
 * generator decodes it back to per-variable values when emitting
 * force/release commands.
 */
class ChoiceCodec
{
  public:
    ChoiceCodec() = default;

    /** Build a codec for the given choice variables. */
    explicit ChoiceCodec(std::vector<ChoiceVarInfo> vars);

    /** @return the choice variable descriptors. */
    const std::vector<ChoiceVarInfo> &vars() const { return vars_; }

    /** @return the product of all cardinalities. */
    uint64_t numCombinations() const { return combos_; }

    /** Pack @p choice into a single code. */
    uint64_t encode(const Choice &choice) const;

    /** Unpack @p code into a per-variable tuple. */
    Choice decode(uint64_t code) const;

    /** @return component @p var of @p code without a full decode. */
    uint32_t component(uint64_t code, size_t var) const;

  private:
    std::vector<ChoiceVarInfo> vars_;
    std::vector<uint64_t> strides_;
    uint64_t combos_ = 1;
};

/** Result of one legal transition. */
struct Transition
{
    BitVec next;              ///< next packed state
    unsigned instructions = 0; ///< instructions consumed by the edge
};

/**
 * Abstract synchronous FSM model.
 *
 * Implementations must be deterministic: next() depends only on the
 * packed state and the choice tuple.
 */
class Model
{
  public:
    virtual ~Model() = default;

    /** @return a human-readable model name for reports. */
    virtual std::string name() const = 0;

    /** @return descriptors of the latched state variables, in layout
     *  order; the packed state width is the sum of widths. */
    virtual const std::vector<StateVarInfo> &stateVars() const = 0;

    /** @return descriptors of the nondeterministic choice variables. */
    virtual const std::vector<ChoiceVarInfo> &choiceVars() const = 0;

    /** @return the packed reset state. */
    virtual BitVec resetState() const = 0;

    /**
     * Advance one clock.
     *
     * @param state Current packed state.
     * @param choice One value per choice variable.
     * @return The transition (next state plus the number of
     *         architectural instructions the edge consumes, used by
     *         the tour generator's per-trace limit), or nullopt when
     *         this choice tuple is not a legal environment action in
     *         @p state (the paper's "constraining the abstract
     *         models").
     */
    virtual std::optional<Transition> next(const BitVec &state,
                                           const Choice &choice) const = 0;

    /**
     * Enumerate every legal transition out of @p state.
     *
     * The default implementation iterates the full cartesian product
     * of choice values (in ascending packed-code order) and filters
     * through next(). Models whose choice relevance is sparse (like
     * the PP control, where most inputs are examined only in a few
     * states) override this with a generator that visits only the
     * canonical tuples — a large constant-factor speedup for the
     * enumerator with identical results.
     *
     * @param state Source state.
     * @param fn Called once per legal transition with the packed
     *           choice code and the transition.
     */
    virtual void forEachTransition(
        const BitVec &state,
        const std::function<void(uint64_t, Transition &&)> &fn) const;

    /**
     * @return this model's compiled-form spec (see
     * compile/fsm_spec.hh), or nullptr when it has none. Producers
     * whose step function is expressible as a pure expression network
     * (today: the mini-Verilog translator) publish a spec here; the
     * enumerator lowers it to bytecode when
     * EnumOptions::compiledStep asks for a compiled kernel, and
     * falls back to this interpreted interface otherwise. A returned
     * spec must be bit-exact with next()/forEachTransition().
     */
    virtual std::shared_ptr<const compile::FsmSpec> compileSpec() const;

    /** @return total packed state width in bits. */
    size_t stateBits() const;

    /** @return a codec over this model's choice variables. */
    ChoiceCodec makeChoiceCodec() const;

    /** @return a "var=value, ..." rendering of @p state for debug. */
    std::string describeState(const BitVec &state) const;

    /** @return a "var=value, ..." rendering of @p choice for debug. */
    std::string describeChoice(const Choice &choice) const;
};

/**
 * Helper that assigns bit offsets to state variables and provides
 * named field access into packed states.
 */
class StateLayout
{
  public:
    StateLayout() = default;

    /** Build a layout over @p vars, in order. */
    explicit StateLayout(const std::vector<StateVarInfo> &vars);

    /** @return total width in bits. */
    size_t totalBits() const { return totalBits_; }

    /** @return index of the variable named @p name; panics if absent. */
    size_t indexOf(const std::string &name) const;

    /** @return field value of variable @p var in @p state. */
    uint64_t get(const BitVec &state, size_t var) const;

    /** Set field value of variable @p var in @p state. */
    void set(BitVec &state, size_t var, uint64_t value) const;

    /** @return field value by name (slower; for tests and reports). */
    uint64_t getByName(const BitVec &state, const std::string &name) const;

    /** @return number of variables. */
    size_t numVars() const { return offsets_.size(); }

    /** @return bit offset of variable @p var. */
    size_t offsetOf(size_t var) const { return offsets_[var]; }

    /** @return width of variable @p var. */
    size_t widthOf(size_t var) const { return widths_[var]; }

  private:
    std::vector<size_t> offsets_;
    std::vector<size_t> widths_;
    std::vector<std::string> names_;
    size_t totalBits_ = 0;
};

} // namespace archval::fsm

#endif // ARCHVAL_FSM_MODEL_HH

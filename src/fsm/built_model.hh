/**
 * @file
 * Programmatic model construction helpers.
 *
 * LambdaModel wraps a next-state closure; ExplicitFsm is a small
 * named-state transition table used for the paper's Figure 4.1 / 4.2
 * spec-vs-implementation examples and for unit tests.
 */

#ifndef ARCHVAL_FSM_BUILT_MODEL_HH
#define ARCHVAL_FSM_BUILT_MODEL_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fsm/model.hh"

namespace archval::fsm
{

/** Model whose next-state function is an arbitrary closure. */
class LambdaModel : public Model
{
  public:
    using NextFn = std::function<std::optional<BitVec>(const BitVec &,
                                                       const Choice &)>;
    using InstrFn =
        std::function<unsigned(const BitVec &, const Choice &)>;

    /**
     * @param name Model name for reports.
     * @param state_vars Latched variable descriptors (layout order).
     * @param choice_vars Nondeterministic choice descriptors.
     * @param next Next-state closure.
     * @param instr Optional per-edge instruction count closure.
     */
    LambdaModel(std::string name, std::vector<StateVarInfo> state_vars,
                std::vector<ChoiceVarInfo> choice_vars, NextFn next,
                InstrFn instr = nullptr);

    std::string name() const override { return name_; }
    const std::vector<StateVarInfo> &stateVars() const override;
    const std::vector<ChoiceVarInfo> &choiceVars() const override;
    BitVec resetState() const override;
    std::optional<Transition> next(const BitVec &state,
                                   const Choice &choice) const override;

    /** @return the layout over this model's state variables. */
    const StateLayout &layout() const { return layout_; }

  private:
    std::string name_;
    std::vector<StateVarInfo> stateVars_;
    std::vector<ChoiceVarInfo> choiceVars_;
    StateLayout layout_;
    NextFn next_;
    InstrFn instr_;
};

/**
 * Explicit transition-table FSM over named states and named inputs.
 *
 * Missing (state, input) pairs self-loop by default; this mirrors a
 * controller that ignores an input in a state. Use forbid() to make a
 * pair an illegal environment action instead.
 */
class ExplicitFsm
{
  public:
    /** @param name FSM name; @p reset must be added via addState. */
    explicit ExplicitFsm(std::string name) : name_(std::move(name)) {}

    /** Add a state; the first state added is the reset state. */
    void addState(const std::string &state);

    /** Add an input symbol (one choice-variable alternative). */
    void addInput(const std::string &input);

    /** Define transition from @p src on @p input to @p dst. */
    void addTransition(const std::string &src, const std::string &input,
                       const std::string &dst);

    /** Mark (src, input) as an illegal environment action. */
    void forbid(const std::string &src, const std::string &input);

    /** @return number of states. */
    size_t numStates() const { return states_.size(); }

    /** @return number of input symbols. */
    size_t numInputs() const { return inputs_.size(); }

    /** @return the state names in index order. */
    const std::vector<std::string> &states() const { return states_; }

    /** @return the input names in index order. */
    const std::vector<std::string> &inputs() const { return inputs_; }

    /** @return index of state @p name; fatal if unknown. */
    size_t stateIndex(const std::string &name) const;

    /** @return index of input @p name; fatal if unknown. */
    size_t inputIndex(const std::string &name) const;

    /**
     * @return destination state index for (src, input): the defined
     * transition, the self-loop default, or nullopt when forbidden.
     */
    std::optional<size_t> step(size_t src, size_t input) const;

    /**
     * Wrap as a Model with one state variable and one choice variable
     * (the input symbol).
     */
    std::unique_ptr<Model> toModel() const;

  private:
    std::string name_;
    std::vector<std::string> states_;
    std::vector<std::string> inputs_;
    std::map<std::pair<size_t, size_t>, size_t> transitions_;
    std::map<std::pair<size_t, size_t>, bool> forbidden_;
};

} // namespace archval::fsm

#endif // ARCHVAL_FSM_BUILT_MODEL_HH

#include "built_model.hh"

#include <bit>
#include <memory>

#include "support/status.hh"

namespace archval::fsm
{

LambdaModel::LambdaModel(std::string name,
                         std::vector<StateVarInfo> state_vars,
                         std::vector<ChoiceVarInfo> choice_vars,
                         NextFn next, InstrFn instr)
    : name_(std::move(name)), stateVars_(std::move(state_vars)),
      choiceVars_(std::move(choice_vars)), layout_(stateVars_),
      next_(std::move(next)), instr_(std::move(instr))
{
    if (!next_)
        fatal("LambdaModel requires a next-state function");
}

const std::vector<StateVarInfo> &
LambdaModel::stateVars() const
{
    return stateVars_;
}

const std::vector<ChoiceVarInfo> &
LambdaModel::choiceVars() const
{
    return choiceVars_;
}

BitVec
LambdaModel::resetState() const
{
    BitVec state(layout_.totalBits());
    for (size_t i = 0; i < stateVars_.size(); ++i)
        layout_.set(state, i, stateVars_[i].resetValue);
    return state;
}

std::optional<Transition>
LambdaModel::next(const BitVec &state, const Choice &choice) const
{
    auto next_state = next_(state, choice);
    if (!next_state)
        return std::nullopt;
    Transition t;
    t.next = std::move(*next_state);
    t.instructions = instr_ ? instr_(state, choice) : 0;
    return t;
}

void
ExplicitFsm::addState(const std::string &state)
{
    for (const auto &existing : states_) {
        if (existing == state)
            fatal("duplicate state '" + state + "' in FSM " + name_);
    }
    states_.push_back(state);
}

void
ExplicitFsm::addInput(const std::string &input)
{
    for (const auto &existing : inputs_) {
        if (existing == input)
            fatal("duplicate input '" + input + "' in FSM " + name_);
    }
    inputs_.push_back(input);
}

void
ExplicitFsm::addTransition(const std::string &src, const std::string &input,
                           const std::string &dst)
{
    transitions_[{stateIndex(src), inputIndex(input)}] = stateIndex(dst);
}

void
ExplicitFsm::forbid(const std::string &src, const std::string &input)
{
    forbidden_[{stateIndex(src), inputIndex(input)}] = true;
}

size_t
ExplicitFsm::stateIndex(const std::string &name) const
{
    for (size_t i = 0; i < states_.size(); ++i) {
        if (states_[i] == name)
            return i;
    }
    fatal("unknown state '" + name + "' in FSM " + name_);
}

size_t
ExplicitFsm::inputIndex(const std::string &name) const
{
    for (size_t i = 0; i < inputs_.size(); ++i) {
        if (inputs_[i] == name)
            return i;
    }
    fatal("unknown input '" + name + "' in FSM " + name_);
}

std::optional<size_t>
ExplicitFsm::step(size_t src, size_t input) const
{
    if (forbidden_.count({src, input}))
        return std::nullopt;
    auto it = transitions_.find({src, input});
    if (it != transitions_.end())
        return it->second;
    return src; // default self-loop
}

std::unique_ptr<Model>
ExplicitFsm::toModel() const
{
    if (states_.empty())
        fatal("FSM " + name_ + " has no states");
    if (inputs_.empty())
        fatal("FSM " + name_ + " has no inputs");

    size_t bits = std::bit_width(states_.size() - 1);
    if (bits == 0)
        bits = 1;

    std::vector<StateVarInfo> state_vars = {{name_ + ".state", bits, 0}};
    std::vector<ChoiceVarInfo> choice_vars = {
        {name_ + ".input", static_cast<uint32_t>(inputs_.size())}};

    // Copy the table by value so the Model owns an immutable snapshot.
    auto table = *this;
    auto next_fn = [table, bits](const BitVec &state, const Choice &choice)
        -> std::optional<BitVec> {
        size_t src = static_cast<size_t>(state.getField(0, bits));
        auto dst = table.step(src, choice[0]);
        if (!dst)
            return std::nullopt;
        BitVec out(bits);
        out.setField(0, bits, *dst);
        return out;
    };

    return std::make_unique<LambdaModel>(name_, std::move(state_vars),
                                         std::move(choice_vars),
                                         std::move(next_fn));
}

} // namespace archval::fsm

#include "model.hh"

#include "support/status.hh"
#include "support/strings.hh"

namespace archval::fsm
{

ChoiceCodec::ChoiceCodec(std::vector<ChoiceVarInfo> vars)
    : vars_(std::move(vars))
{
    strides_.resize(vars_.size());
    for (size_t i = 0; i < vars_.size(); ++i) {
        if (vars_[i].cardinality == 0)
            fatal("choice variable '" + vars_[i].name +
                  "' has zero cardinality");
        strides_[i] = combos_;
        // Overflow check: the packed code must fit in 64 bits.
        if (combos_ > UINT64_MAX / vars_[i].cardinality)
            fatal("choice space exceeds 2^64 combinations");
        combos_ *= vars_[i].cardinality;
    }
}

uint64_t
ChoiceCodec::encode(const Choice &choice) const
{
    if (choice.size() != vars_.size())
        panic("ChoiceCodec::encode arity mismatch");
    uint64_t code = 0;
    for (size_t i = 0; i < vars_.size(); ++i) {
        if (choice[i] >= vars_[i].cardinality)
            panic("ChoiceCodec::encode value out of range for '" +
                  vars_[i].name + "'");
        code += strides_[i] * choice[i];
    }
    return code;
}

Choice
ChoiceCodec::decode(uint64_t code) const
{
    Choice choice(vars_.size());
    for (size_t i = 0; i < vars_.size(); ++i) {
        choice[i] = static_cast<uint32_t>((code / strides_[i]) %
                                          vars_[i].cardinality);
    }
    return choice;
}

uint32_t
ChoiceCodec::component(uint64_t code, size_t var) const
{
    if (var >= vars_.size())
        panic("ChoiceCodec::component out of range");
    return static_cast<uint32_t>((code / strides_[var]) %
                                 vars_[var].cardinality);
}

std::shared_ptr<const compile::FsmSpec>
Model::compileSpec() const
{
    return nullptr; // no compiled form by default
}

size_t
Model::stateBits() const
{
    size_t bits = 0;
    for (const auto &var : stateVars())
        bits += var.numBits;
    return bits;
}

ChoiceCodec
Model::makeChoiceCodec() const
{
    return ChoiceCodec(choiceVars());
}

void
Model::forEachTransition(
    const BitVec &state,
    const std::function<void(uint64_t, Transition &&)> &fn) const
{
    const ChoiceCodec codec = makeChoiceCodec();
    const auto &vars = codec.vars();
    Choice choice(vars.size(), 0);

    const uint64_t combos = codec.numCombinations();
    for (uint64_t code = 0; code < combos; ++code) {
        auto transition = next(state, choice);
        if (transition)
            fn(code, std::move(*transition));
        // Mixed-radix increment matching packed-code order.
        for (size_t i = 0; i < choice.size(); ++i) {
            if (++choice[i] < vars[i].cardinality)
                break;
            choice[i] = 0;
        }
    }
}

std::string
Model::describeState(const BitVec &state) const
{
    StateLayout layout(stateVars());
    std::string out;
    const auto &vars = stateVars();
    for (size_t i = 0; i < vars.size(); ++i) {
        if (i)
            out += ", ";
        out += formatString("%s=%llu", vars[i].name.c_str(),
                            static_cast<unsigned long long>(
                                layout.get(state, i)));
    }
    return out;
}

std::string
Model::describeChoice(const Choice &choice) const
{
    std::string out;
    const auto &vars = choiceVars();
    for (size_t i = 0; i < vars.size() && i < choice.size(); ++i) {
        if (i)
            out += ", ";
        out += formatString("%s=%u", vars[i].name.c_str(), choice[i]);
    }
    return out;
}

StateLayout::StateLayout(const std::vector<StateVarInfo> &vars)
{
    offsets_.reserve(vars.size());
    widths_.reserve(vars.size());
    names_.reserve(vars.size());
    for (const auto &var : vars) {
        offsets_.push_back(totalBits_);
        widths_.push_back(var.numBits);
        names_.push_back(var.name);
        totalBits_ += var.numBits;
    }
}

size_t
StateLayout::indexOf(const std::string &name) const
{
    for (size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == name)
            return i;
    }
    panic("StateLayout: unknown variable '" + name + "'");
}

uint64_t
StateLayout::get(const BitVec &state, size_t var) const
{
    return state.getField(offsets_[var], widths_[var]);
}

void
StateLayout::set(BitVec &state, size_t var, uint64_t value) const
{
    state.setField(offsets_[var], widths_[var], value);
}

uint64_t
StateLayout::getByName(const BitVec &state, const std::string &name) const
{
    return get(state, indexOf(name));
}

} // namespace archval::fsm

#!/usr/bin/env python3
"""CI driver for the `telemetry_smoke` ctest.

Runs the telemetry_smoke binary with ARCHVAL_TRACE pointing at a
temporary file, then validates the emitted trace with
trace_summary.py --check (schema validation + nonzero span count)
and asserts the trace embeds a non-empty metrics snapshot.

Usage: tools/telemetry_smoke.py <path-to-telemetry_smoke-binary>
"""

import json
import os
import subprocess
import sys
import tempfile


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary = sys.argv[1]
    summary = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "trace_summary.py")

    with tempfile.TemporaryDirectory() as tmp:
        trace = os.path.join(tmp, "smoke_trace.json")
        env = dict(os.environ, ARCHVAL_TRACE=trace)
        run = subprocess.run([binary], env=env)
        if run.returncode != 0:
            print(f"smoke binary failed (exit {run.returncode})",
                  file=sys.stderr)
            return 1
        if not os.path.exists(trace):
            print("smoke binary wrote no trace file", file=sys.stderr)
            return 1

        check = subprocess.run(
            [sys.executable, summary, trace, "--check"])
        if check.returncode != 0:
            print("trace_summary --check failed", file=sys.stderr)
            return 1

        with open(trace) as f:
            doc = json.load(f)
        metrics = doc.get("otherData", {}).get("metrics", {})
        if not metrics:
            print("trace embeds no metrics snapshot", file=sys.stderr)
            return 1
        expected = ("enum.states", "replay.jobs")
        missing = [k for k in expected if k not in metrics]
        if missing:
            print(f"metrics snapshot missing {missing}",
                  file=sys.stderr)
            return 1

    print("telemetry smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""CI driver for the `service_smoke` ctest.

Boots a real archvald daemon on a unix socket with ARCHVAL_TRACE
armed, then drives it end-to-end through archval_client:

  1. `enumerate` — builds the session's state graph.
  2. `replay` (cold) — plays the generated vectors, populating the
     session's replay warm cache.
  3. `replay` (warm) — must report a warm-cache hit on every trace
     and simulate at most 10% of the cold run's cycles, while its
     per-trace results stay byte-identical to the cold run's.
  4. `shutdown` — stops the daemon cleanly; its telemetry trace must
     then pass trace_summary.py --check.

Usage: tools/service_smoke.py <archvald> <archval_client>
"""

import json
import os
import subprocess
import sys
import tempfile
import time


def fail(msg):
    print(f"service_smoke: {msg}", file=sys.stderr)
    return 1


def client_events(client, socket, *args, timeout=300):
    """Run archval_client --json and return the parsed event list."""
    run = subprocess.run(
        [client, "--socket", socket, "--json", *args],
        capture_output=True, text=True, timeout=timeout)
    events = [json.loads(line) for line in run.stdout.splitlines()
              if line.strip()]
    return run.returncode, events


def terminal(events):
    for event in events:
        if event.get("type") in ("result", "error", "cancelled"):
            return event
    return None


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    archvald, client = sys.argv[1], sys.argv[2]
    summary = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "trace_summary.py")

    with tempfile.TemporaryDirectory() as tmp:
        socket = os.path.join(tmp, "archval.sock")
        trace = os.path.join(tmp, "service_trace.json")
        env = dict(os.environ, ARCHVAL_TRACE=trace)
        daemon = subprocess.Popen(
            [archvald, "--socket", socket, "--workers", "2"],
            env=env, stdout=subprocess.PIPE, text=True)
        try:
            # The daemon prints its listening line once ready.
            line = daemon.stdout.readline()
            if "listening" not in line:
                return fail(f"unexpected daemon banner: {line!r}")
            for _ in range(50):
                if os.path.exists(socket):
                    break
                time.sleep(0.1)

            code, events = client_events(client, socket, "enumerate")
            result = terminal(events)
            if code != 0 or not result or result["type"] != "result":
                return fail(f"enumerate failed: exit {code}, "
                            f"terminal {result}")
            if result.get("states", 0) <= 0:
                return fail("enumerate reported no states")

            code, events = client_events(client, socket, "replay")
            cold = terminal(events)
            if code != 0 or not cold or cold["type"] != "result":
                return fail(f"cold replay failed: exit {code}")
            if cold["warm"]["hits"] != 0:
                return fail("cold replay claims warm hits")
            if cold["simulatedCycles"] <= 0:
                return fail("cold replay simulated nothing")

            code, events = client_events(client, socket, "replay")
            warm = terminal(events)
            if code != 0 or not warm or warm["type"] != "result":
                return fail(f"warm replay failed: exit {code}")
            if warm["warm"]["hits"] != warm["traces"]:
                return fail(f"warm replay hit {warm['warm']['hits']}"
                            f"/{warm['traces']} traces")
            if warm["simulatedCycles"] * 10 > cold["simulatedCycles"]:
                return fail(
                    f"warm replay simulated "
                    f"{warm['simulatedCycles']} cycles; cold did "
                    f"{cold['simulatedCycles']} (> 10% bar)")
            if warm["plays"] != cold["plays"]:
                return fail("warm results differ from cold results")

            code, events = client_events(client, socket, "shutdown")
            if code != 0 or not events or \
                    events[0].get("type") != "shutting_down":
                return fail(f"shutdown failed: exit {code}")
            daemon.wait(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

        if not os.path.exists(trace):
            return fail("daemon wrote no telemetry trace")
        check = subprocess.run(
            [sys.executable, summary, trace, "--check"])
        if check.returncode != 0:
            return fail("trace_summary --check failed")

        with open(trace) as f:
            doc = json.load(f)
        metrics = doc.get("otherData", {}).get("metrics", {})
        expected = ("service.jobs_done", "replay.warm_hits",
                    "service.session_hits")
        missing = [k for k in expected if k not in metrics]
        if missing:
            return fail(f"metrics snapshot missing {missing}")

    print("service smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

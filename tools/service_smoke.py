#!/usr/bin/env python3
"""CI driver for the `service_smoke` and `service_persist` ctests.

Default mode boots a real archvald daemon on a unix socket with
ARCHVAL_TRACE armed, then drives it end-to-end through
archval_client:

  1. `enumerate` — builds the session's state graph.
  2. `replay` (cold) — plays the generated vectors, populating the
     session's replay warm cache.
  3. `replay` (warm) — must report a warm-cache hit on every trace
     and simulate at most 10% of the cold run's cycles, while its
     per-trace results stay byte-identical to the cold run's.
  4. `shutdown` — stops the daemon cleanly; its telemetry trace must
     then pass trace_summary.py --check.

`--persist` mode runs the restart-and-rewarm differential instead:
one daemon lifetime does the cold work on a --session-dir store and
shuts down; a *second* daemon process on the same store must then
restore the session from disk (session_restore_hits >= 1) and replay
warm — byte-identical per-trace results, every trace a warm-cache
hit, at most 10% of the cold run's simulated cycles.

`--flight` mode exercises the crash flight recorder instead: the
daemon is booted with --crash-dir, a replay job is started and
SIGUSR1 is delivered while it is in flight; the daemon must stay up,
finish the job, and leave a crash-report file that parses as JSON,
gives "SIGUSR1" as the reason, carries the event ring and the
metrics digest, and names the in-flight replay job in its
activeJobs table.

Usage: tools/service_smoke.py [--persist|--flight] \\
           <archvald> <archval_client>
"""

import glob
import json
import os
import signal
import subprocess
import sys
import tempfile
import time


def fail(msg):
    print(f"service_smoke: {msg}", file=sys.stderr)
    return 1


def client_events(client, socket, *args, timeout=300):
    """Run archval_client --json and return the parsed event list."""
    run = subprocess.run(
        [client, "--socket", socket, "--json", *args],
        capture_output=True, text=True, timeout=timeout)
    events = [json.loads(line) for line in run.stdout.splitlines()
              if line.strip()]
    return run.returncode, events


def terminal(events):
    for event in events:
        if event.get("type") in ("result", "error", "cancelled"):
            return event
    return None


def boot_daemon(archvald, socket, env, extra_args=()):
    """Start archvald and wait for its listening banner and socket.
    Returns (daemon, error); exactly one is None."""
    daemon = subprocess.Popen(
        [archvald, "--socket", socket, "--workers", "2",
         *extra_args],
        env=env, stdout=subprocess.PIPE, text=True)
    line = daemon.stdout.readline()
    if "listening" not in line:
        daemon.kill()
        daemon.wait()
        return None, f"unexpected daemon banner: {line!r}"
    for _ in range(50):
        if os.path.exists(socket):
            break
        time.sleep(0.1)
    return daemon, None


def shutdown_daemon(client, socket, daemon):
    code, events = client_events(client, socket, "shutdown")
    if code != 0 or not events or \
            events[0].get("type") != "shutting_down":
        return f"shutdown failed: exit {code}"
    daemon.wait(timeout=30)
    return None


def replay(client, socket, what):
    """One replay job; returns (result, error)."""
    code, events = client_events(client, socket, "replay")
    result = terminal(events)
    if code != 0 or not result or result["type"] != "result":
        return None, f"{what} replay failed: exit {code}, " \
                     f"terminal {result}"
    return result, None


def check_warm_vs_cold(warm, cold, what):
    """The replay differential shared by both modes."""
    if warm["warm"]["hits"] != warm["traces"]:
        return f"{what} replay hit {warm['warm']['hits']}" \
               f"/{warm['traces']} traces"
    if warm["simulatedCycles"] * 10 > cold["simulatedCycles"]:
        return f"{what} replay simulated " \
               f"{warm['simulatedCycles']} cycles; cold did " \
               f"{cold['simulatedCycles']} (> 10% bar)"
    if warm["plays"] != cold["plays"]:
        return f"{what} results differ from cold results"
    return None


def trace_metrics(trace):
    with open(trace) as f:
        doc = json.load(f)
    return doc.get("otherData", {}).get("metrics", {})


def run_smoke(archvald, client, summary):
    with tempfile.TemporaryDirectory() as tmp:
        socket = os.path.join(tmp, "archval.sock")
        trace = os.path.join(tmp, "service_trace.json")
        env = dict(os.environ, ARCHVAL_TRACE=trace)
        daemon, error = boot_daemon(archvald, socket, env)
        if error:
            return fail(error)
        try:
            code, events = client_events(client, socket, "enumerate")
            result = terminal(events)
            if code != 0 or not result or result["type"] != "result":
                return fail(f"enumerate failed: exit {code}, "
                            f"terminal {result}")
            if result.get("states", 0) <= 0:
                return fail("enumerate reported no states")

            cold, error = replay(client, socket, "cold")
            if error:
                return fail(error)
            if cold["warm"]["hits"] != 0:
                return fail("cold replay claims warm hits")
            if cold["simulatedCycles"] <= 0:
                return fail("cold replay simulated nothing")

            warm, error = replay(client, socket, "warm")
            if error:
                return fail(error)
            error = check_warm_vs_cold(warm, cold, "warm")
            if error:
                return fail(error)

            error = shutdown_daemon(client, socket, daemon)
            if error:
                return fail(error)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

        if not os.path.exists(trace):
            return fail("daemon wrote no telemetry trace")
        check = subprocess.run(
            [sys.executable, summary, trace, "--check"])
        if check.returncode != 0:
            return fail("trace_summary --check failed")

        metrics = trace_metrics(trace)
        expected = ("service.jobs_done", "replay.warm_hits",
                    "service.session_hits")
        missing = [k for k in expected if k not in metrics]
        if missing:
            return fail(f"metrics snapshot missing {missing}")

    print("service smoke ok")
    return 0


def run_persist(archvald, client, summary):
    with tempfile.TemporaryDirectory() as tmp:
        socket = os.path.join(tmp, "archval.sock")
        store = os.path.join(tmp, "sessions")
        cold_trace = os.path.join(tmp, "trace_cold.json")
        warm_trace = os.path.join(tmp, "trace_warm.json")
        persist_args = ("--session-dir", store)

        # Daemon lifetime 1: build the session cold; the completed
        # job persists it into the store.
        env = dict(os.environ, ARCHVAL_TRACE=cold_trace)
        daemon, error = boot_daemon(archvald, socket, env,
                                    persist_args)
        if error:
            return fail(error)
        try:
            cold, error = replay(client, socket, "cold")
            if error:
                return fail(error)
            if cold["simulatedCycles"] <= 0:
                return fail("cold replay simulated nothing")
            error = shutdown_daemon(client, socket, daemon)
            if error:
                return fail(error)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

        if not os.listdir(store):
            return fail("cold daemon left no session store file")
        metrics = trace_metrics(cold_trace)
        if int(metrics.get("service.session_saves", 0)) < 1:
            return fail("cold daemon reported no session save")

        # Daemon lifetime 2: a fresh process on the same store must
        # restore the session from disk and replay warm.
        env = dict(os.environ, ARCHVAL_TRACE=warm_trace)
        daemon, error = boot_daemon(archvald, socket, env,
                                    persist_args)
        if error:
            return fail(error)
        try:
            warm, error = replay(client, socket, "restarted")
            if error:
                return fail(error)
            error = check_warm_vs_cold(warm, cold, "restarted")
            if error:
                return fail(error)
            error = shutdown_daemon(client, socket, daemon)
            if error:
                return fail(error)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

        metrics = trace_metrics(warm_trace)
        if int(metrics.get("service.session_restore_hits", 0)) < 1:
            return fail("restarted daemon did not restore the "
                        "session from disk")
        check = subprocess.run(
            [sys.executable, summary, warm_trace, "--check"])
        if check.returncode != 0:
            return fail("trace_summary --check failed")

    print("service persist ok")
    return 0


def run_flight(archvald, client):
    with tempfile.TemporaryDirectory() as tmp:
        socket = os.path.join(tmp, "archval.sock")
        crash_dir = os.path.join(tmp, "crash")
        os.mkdir(crash_dir)
        daemon, error = boot_daemon(
            archvald, socket, dict(os.environ),
            ("--crash-dir", crash_dir))
        if error:
            return fail(error)
        try:
            # Start a replay job asynchronously and pepper the
            # daemon with SIGUSR1 while the job is in flight. Each
            # signal dumps a fresh crash report; at least one must
            # catch the job in its activeJobs table.
            job = subprocess.Popen(
                [client, "--socket", socket, "--json", "replay"],
                stdout=subprocess.PIPE, text=True)
            while job.poll() is None:
                daemon.send_signal(signal.SIGUSR1)
                time.sleep(0.02)
            out, _ = job.communicate(timeout=300)
            events = [json.loads(line) for line in out.splitlines()
                      if line.strip()]
            result = terminal(events)
            if job.returncode != 0 or not result or \
                    result["type"] != "result":
                return fail("replay under SIGUSR1 failed: exit "
                            f"{job.returncode}, terminal {result}")

            error = shutdown_daemon(client, socket, daemon)
            if error:
                return fail(error)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

        dumps = sorted(glob.glob(os.path.join(crash_dir, "crash-*.json")))
        if not dumps:
            return fail("no crash report written for SIGUSR1")
        saw_job = False
        for path in dumps:
            with open(path) as f:
                doc = json.load(f)  # must parse — the point of dumps
            if doc.get("reason") != "SIGUSR1":
                return fail(f"{path}: reason {doc.get('reason')!r}, "
                            "expected 'SIGUSR1'")
            for key in ("events", "activeJobs", "metrics", "pid"):
                if key not in doc:
                    return fail(f"{path}: missing {key!r}")
            if not any(ev.get("kind") == "signal"
                       for ev in doc["events"]):
                return fail(f"{path}: no 'signal' event on the ring")
            for rec in doc["activeJobs"]:
                if rec.get("verb") == "replay" and "job" in rec:
                    saw_job = True
        if not saw_job:
            return fail(f"none of the {len(dumps)} crash reports "
                        "caught the in-flight replay job")

    print(f"service flight ok ({len(dumps)} dumps, "
          "in-flight job named)")
    return 0


def main():
    args = sys.argv[1:]
    persist = "--persist" in args
    if persist:
        args.remove("--persist")
    flight = "--flight" in args
    if flight:
        args.remove("--flight")
    if len(args) != 2 or (persist and flight):
        print(__doc__, file=sys.stderr)
        return 2
    archvald, client = args
    summary = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "trace_summary.py")
    if persist:
        return run_persist(archvald, client, summary)
    if flight:
        return run_flight(archvald, client)
    return run_smoke(archvald, client, summary)


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""CI driver for the `compile_smoke` ctest.

Exercises the service end of the compiled step kernel: two archvald
lifetimes enumerate the same design, one interpreted and one with
`--compiled-step`, and the reported `graphFingerprint` must be
byte-identical. The service model (the PP FSM) publishes no compiled
form, so the compiled-step run must also report its fall back to the
interpreter — both in the result frame (`compiledFallback`) and in
the telemetry trace (`compile.enum_fallbacks`), which must pass
trace_summary.py --check.

Usage: tools/compile_smoke.py <archvald> <archval_client>
"""

import os
import sys
import tempfile

from service_smoke import (boot_daemon, client_events, fail,
                           shutdown_daemon, terminal, trace_metrics)
import subprocess


def enumerate_once(archvald, client, tmp, tag, extra_client_args):
    """One daemon lifetime running a single enumerate job.
    Returns (result_frame, trace_path, error)."""
    socket = os.path.join(tmp, f"archval_{tag}.sock")
    trace = os.path.join(tmp, f"trace_{tag}.json")
    env = dict(os.environ, ARCHVAL_TRACE=trace)
    daemon, error = boot_daemon(archvald, socket, env)
    if error:
        return None, trace, error
    try:
        code, events = client_events(
            client, socket, "enumerate", *extra_client_args)
        result = terminal(events)
        if code != 0 or not result or result["type"] != "result":
            return None, trace, \
                f"{tag} enumerate failed: exit {code}, " \
                f"terminal {result}"
        error = shutdown_daemon(client, socket, daemon)
        if error:
            return None, trace, error
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
    return result, trace, None


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    archvald, client = sys.argv[1:]
    summary = os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "trace_summary.py")

    with tempfile.TemporaryDirectory() as tmp:
        interp, _, error = enumerate_once(
            archvald, client, tmp, "interp", [])
        if error:
            return fail(error)
        compiled, trace, error = enumerate_once(
            archvald, client, tmp, "compiled", ["--compiled-step"])
        if error:
            return fail(error)

        for tag, result in (("interp", interp),
                            ("compiled", compiled)):
            if result.get("states", 0) <= 0:
                return fail(f"{tag} enumerate reported no states")
            if "graphFingerprint" not in result:
                return fail(f"{tag} result has no graphFingerprint")

        if interp["graphFingerprint"] != compiled["graphFingerprint"]:
            return fail(
                "graph fingerprints diverge: interpreted "
                f"{interp['graphFingerprint']} vs compiled-step "
                f"{compiled['graphFingerprint']}")
        if interp["states"] != compiled["states"] or \
                interp["edges"] != compiled["edges"]:
            return fail("state/edge counts diverge between kernels")

        # The PP FSM is closure-based: the compiled-step request must
        # report a clean fall back, not silently pretend it compiled.
        if interp.get("compiledFallback") is not False:
            return fail("interpreted run flagged a compiled fallback")
        if compiled.get("compiledFallback") is not True:
            return fail("compiled-step run on the PP FSM did not "
                        "report its interpreter fallback")

        metrics = trace_metrics(trace)
        if int(metrics.get("compile.enum_fallbacks", 0)) < 1:
            return fail("compiled-step trace has no "
                        "compile.enum_fallbacks counter")
        check = subprocess.run(
            [sys.executable, summary, trace, "--check"])
        if check.returncode != 0:
            return fail("trace_summary --check failed")

    print("compile smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Diff a bench --json emission against its committed baseline.

Usage:
    bench_diff.py BASELINE CURRENT [--threshold 0.20]

Exit codes:
    0   no gated metric regressed
    1   regression (or structural mismatch) detected
    77  CURRENT does not exist — the bench has not been run in this
        build tree; ctest treats 77 as SKIP (SKIP_RETURN_CODE)

Rows are matched on their identifying keys (sweep coordinates such as
workers/stride/bug). Metrics fall into three classes:

  * exact    — must not change at all: correctness booleans and
               deterministic structure counts (states, edges,
               identical, *_detected). Any drift is a bug, not a
               regression.
  * gated    — performance counters that are allowed to drift up to
               the threshold (default 20%) in the bad direction:
               lower-is-better (simulated cycles) or higher-is-better
               (avoided fraction, hit rate, stride savings).
  * informational — everything else, most importantly wall-clock and
               CPU seconds: machine-dependent, reported but never
               gated (the committed baseline may come from different
               hardware — see the "host" object in each emission).
"""

import argparse
import json
import sys

# Keys that identify a row within a bench (sweep coordinates).
ID_KEYS = (
    "section",
    "kind",
    "configuration",
    "design",
    "mode",
    "benchmark",
    "workers",
    "threads",
    "cache",
    "stride",
    "spill_budget_mb",
    "budget_kb",
    "processes",
    "bug",
    "mutation",
    "limit",
    "nested",
)

# Metrics that must match the baseline exactly.
EXACT_KEYS = {
    "identical",
    "states",
    "edges",
    "batch_cycles",
    "traces",
    "instructions",
    "longest_trace_edges",
    "tour_detected",
    "random_detected",
    "directed_detected",
    "transitions_tried",
    "transitions_valid",
    "covered_edges",
    "uncovered_edges",
    "tour_budget_instructions",
    "mutated_states",
    "mutated_edges",
    "spill_fallbacks",
    "residency_under_budget",
}
EXACT_SUFFIXES = ("_detected",)

# Gated metrics and their good direction.
LOWER_IS_BETTER = {
    "simulated_cycles",
    "sim_cycles_cache_off",
    "sim_cycles_cache_on",
    "bits_per_state",
    "tour_instructions",
    "tour_cycles",
}
HIGHER_IS_BETTER = {
    "avoided_fraction",
    "hit_rate",
    "stride_savings",
    "coverage_fraction",
    "speedup_bytecode",
    "speedup_sliced",
}

# Absolute floors, independent of the baseline: on rows flagged
# `"largest": true` (the biggest HDL corpus design) the compiled
# kernels must clear their headline speedups over the interpreter.
# A baseline captured on a fast machine must not let a broken kernel
# hide inside the 20% drift window.
MIN_FLOORS = {
    "speedup_bytecode": 2.0,
    "speedup_sliced": 8.0,
}

# Observability counters from the embedded telemetry registry
# snapshot (the emission's top-level "metrics" object). Gated with
# the same drift threshold as row metrics; everything not named here
# (wall-clock histograms, gauges) is informational.
METRICS_LOWER_IS_BETTER = {
    "replay.checkpoint_misses",
    "replay.verify_fallbacks",
    "replay.spill_fallbacks",
    "replay.cycles_simulated",
    # Service health: jobs turned away or failed, protocol damage
    # and enumeration spill fallbacks are regressions when they grow.
    "service.jobs_failed",
    "service.jobs_rejected",
    "service.frame_errors",
    "service.session_restore_failures",
    "enum.spill_fallbacks",
}
METRICS_HIGHER_IS_BETTER = {
    "replay.checkpoint_hits",
    "replay.stride_hits",
    "replay.bug_set_copies",
    "replay.cycles_avoided",
    "fuzz.arc_novel",
    "fuzz.state_novel",
    "service.jobs_done",
    "service.session_hits",
    "replay.warm_hits",
}
METRICS_EXACT = {
    "enum.states",
    "enum.edges",
}


def row_id(row):
    """Identity of a row: its sweep coordinates."""
    return tuple((k, row[k]) for k in ID_KEYS if k in row)


def classify(key):
    if key in EXACT_KEYS or key.endswith(EXACT_SUFFIXES):
        return "exact"
    if key in LOWER_IS_BETTER:
        return "lower"
    if key in HIGHER_IS_BETTER:
        return "higher"
    return "info"


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if "rows" not in doc or not isinstance(doc["rows"], list):
        raise ValueError(f"{path}: not a bench emission (no rows)")
    return doc


def main():
    parser = argparse.ArgumentParser(
        description="Gate bench results against a committed baseline."
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional drift in the bad direction "
        "(default 0.20)",
    )
    args = parser.parse_args()

    try:
        current = load(args.current)
    except FileNotFoundError:
        print(
            f"SKIP: {args.current} not found — run the bench with "
            f"--json first",
            file=sys.stderr,
        )
        return 77
    baseline = load(args.baseline)  # committed: missing is an error

    if baseline.get("bench") != current.get("bench"):
        print(
            f"FAIL: bench name mismatch: baseline "
            f"{baseline.get('bench')!r} vs current "
            f"{current.get('bench')!r}",
            file=sys.stderr,
        )
        return 1

    current_rows = {row_id(r): r for r in current["rows"]}
    failures = []
    compared = 0

    for base_row in baseline["rows"]:
        rid = row_id(base_row)
        label = " ".join(f"{k}={v}" for k, v in rid) or "(row)"
        cur_row = current_rows.get(rid)
        if cur_row is None:
            failures.append(f"{label}: row missing from current run")
            continue
        for key, base_val in base_row.items():
            if key in ID_KEYS or key not in cur_row:
                continue
            cur_val = cur_row[key]
            kind = classify(key)
            if kind == "exact":
                compared += 1
                if cur_val != base_val:
                    failures.append(
                        f"{label}: {key} changed "
                        f"{base_val!r} -> {cur_val!r} (must be exact)"
                    )
                continue
            if kind == "info":
                continue
            if not isinstance(base_val, (int, float)) or not isinstance(
                cur_val, (int, float)
            ):
                continue
            compared += 1
            if base_val == 0:
                # No relative scale; only flag a higher-is-better
                # metric that has collapsed below an absolute zero
                # baseline (impossible) — i.e. nothing to gate.
                continue
            drift = (cur_val - base_val) / base_val
            bad = drift > args.threshold if kind == "lower" else (
                -drift > args.threshold
            )
            if bad:
                failures.append(
                    f"{label}: {key} regressed "
                    f"{base_val:g} -> {cur_val:g} "
                    f"({100 * drift:+.1f}%, threshold "
                    f"{100 * args.threshold:.0f}%)"
                )

    # Out-of-core absolute gate (no baseline needed): every
    # budget-capped ooc_sweep row must have completed the largest
    # corpus design bit-identically with residency under budget —
    # a machine-independent correctness claim, never drift-gated.
    for cur_row in current["rows"]:
        if cur_row.get("kind") != "ooc_sweep":
            continue
        label = " ".join(f"{k}={v}" for k, v in row_id(cur_row)) \
            or "(row)"
        compared += 1
        if cur_row.get("identical") is not True:
            failures.append(
                f"{label}: out-of-core graph diverged from the "
                f"in-memory enumeration"
            )
        if cur_row.get("states", 0) <= 0:
            failures.append(f"{label}: enumerated no states")
        if cur_row.get("budget_kb", 0) > 0 and cur_row.get(
            "residency_under_budget"
        ) is not True:
            failures.append(
                f"{label}: residency exceeded the memory budget "
                f"(high water "
                f"{cur_row.get('residency_high_water')!r}, "
                f"fallbacks {cur_row.get('spill_fallbacks')!r})"
            )

    # Absolute floors on the current emission (no baseline needed):
    # see MIN_FLOORS.
    for cur_row in current["rows"]:
        if not cur_row.get("largest"):
            continue
        label = " ".join(f"{k}={v}" for k, v in row_id(cur_row)) \
            or "(row)"
        for key, floor in MIN_FLOORS.items():
            value = cur_row.get(key)
            if not isinstance(value, (int, float)):
                continue
            compared += 1
            if value < floor:
                failures.append(
                    f"{label}: {key} = {value:g} below the "
                    f"absolute floor {floor:g}"
                )

    # Observability gating: the registry snapshot embedded by
    # JsonWriter. Baselines without one (pre-telemetry) skip this
    # block, so old baselines stay valid.
    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    for name, base_val in base_metrics.items():
        if name in METRICS_EXACT:
            compared += 1
            if cur_metrics.get(name) != base_val:
                failures.append(
                    f"metrics: {name} changed {base_val!r} -> "
                    f"{cur_metrics.get(name)!r} (must be exact)"
                )
            continue
        if name in METRICS_LOWER_IS_BETTER:
            direction = "lower"
        elif name in METRICS_HIGHER_IS_BETTER:
            direction = "higher"
        else:
            continue
        cur_val = cur_metrics.get(name)
        if not isinstance(base_val, (int, float)) or not isinstance(
            cur_val, (int, float)
        ):
            continue
        compared += 1
        if base_val == 0:
            continue
        drift = (cur_val - base_val) / base_val
        bad = drift > args.threshold if direction == "lower" else (
            -drift > args.threshold
        )
        if bad:
            failures.append(
                f"metrics: {name} regressed {base_val:g} -> "
                f"{cur_val:g} ({100 * drift:+.1f}%, threshold "
                f"{100 * args.threshold:.0f}%)"
            )

    bench = baseline.get("bench")
    if failures:
        print(f"FAIL: {bench}: {len(failures)} regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(
        f"OK: {bench}: {compared} gated metrics within "
        f"{100 * args.threshold:.0f}% of baseline "
        f"({len(baseline['rows'])} rows)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

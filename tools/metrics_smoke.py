#!/usr/bin/env python3
"""CI driver for the `metrics_smoke` ctest.

Boots a real archvald daemon with `--metrics-port 0`, reads the
bound port back from the listening banner, drives an enumerate and
two replay jobs through archval_client, and then asserts the two
observability surfaces against each other:

  * `GET /metrics` must serve a well-formed Prometheus exposition
    (validated by tools/metrics_check.py) containing the queue-wait
    and run-time histograms for the verbs just run, the queue-depth
    gauge, the RSS gauges, and the jobs-done counter;
  * the `stats` protocol verb must answer a frame whose registry
    snapshot agrees with the scrape (same jobs-done count), with
    uptime, queue, session and process sections populated.

Usage: tools/metrics_smoke.py <archvald> <archval_client>
"""

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import metrics_check  # noqa: E402


def fail(msg):
    print(f"metrics_smoke: {msg}", file=sys.stderr)
    return 1


def client_events(client, socket, *args, timeout=300):
    run = subprocess.run(
        [client, "--socket", socket, "--json", *args],
        capture_output=True, text=True, timeout=timeout)
    events = [json.loads(line) for line in run.stdout.splitlines()
              if line.strip()]
    return run.returncode, events


def terminal(events):
    for event in events:
        if event.get("type") in ("result", "error", "cancelled"):
            return event
    return None


def run_job(client, socket, verb):
    code, events = client_events(client, socket, verb)
    result = terminal(events)
    if code != 0 or not result or result["type"] != "result":
        return None, f"{verb} failed: exit {code}, terminal {result}"
    return result, None


def scrape(port):
    with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/metrics", timeout=30) as resp:
        if resp.status != 200:
            raise RuntimeError(f"/metrics answered {resp.status}")
        content_type = resp.headers.get("Content-Type", "")
        if "text/plain" not in content_type:
            raise RuntimeError(f"bad Content-Type {content_type!r}")
        return resp.read().decode()


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    archvald, client = sys.argv[1:]

    with tempfile.TemporaryDirectory() as tmp:
        socket = os.path.join(tmp, "archval.sock")
        daemon = subprocess.Popen(
            [archvald, "--socket", socket, "--workers", "2",
             "--metrics-port", "0"],
            stdout=subprocess.PIPE, text=True)
        try:
            banner = daemon.stdout.readline()
            m = re.search(r"metrics=(\d+)", banner)
            if "listening" not in banner or not m:
                return fail(f"bad daemon banner: {banner!r}")
            port = int(m.group(1))
            for _ in range(50):
                if os.path.exists(socket):
                    break
                time.sleep(0.1)

            # An idle daemon already serves a valid exposition.
            idle = scrape(port)
            samples, _ = metrics_check.parse(idle)
            metrics_check.check_requirement(
                samples, "archval_service_queue_depth==0")

            for verb in ("enumerate", "replay", "replay"):
                _, error = run_job(client, socket, verb)
                if error:
                    return fail(error)

            requirements = [
                "archval_service_jobs_done_total>=3",
                'archval_service_job_run_seconds_count'
                '{verb="enumerate"}>=1',
                'archval_service_job_run_seconds_count'
                '{verb="replay"}>=2',
                'archval_service_job_run_seconds_bucket'
                '{verb="replay",le="+Inf"}>=2',
                'archval_service_job_queue_wait_seconds_count'
                '{verb="replay"}>=2',
                'archval_service_job_queue_wait_seconds_bucket'
                '{verb="enumerate",le="+Inf"}>=1',
                "archval_service_queue_depth==0",
                "archval_service_queue_depth_max",
                "archval_process_rss_bytes>=1",
                "archval_process_peak_rss_bytes>=1",
                "archval_service_sessions==1",
                "archval_replay_warm_hits_total>=1",
            ]
            # The run-time histogram records just after the result
            # frame reaches the client, so give the counters a short
            # grace window before declaring them missing.
            deadline = time.monotonic() + 5.0
            while True:
                samples, types = metrics_check.parse(scrape(port))
                try:
                    for requirement in requirements:
                        metrics_check.check_requirement(
                            samples, requirement)
                    break
                except metrics_check.ExpositionError as e:
                    if time.monotonic() >= deadline:
                        return fail(str(e))
                    time.sleep(0.05)
            for requirement in requirements:
                value = metrics_check.check_requirement(
                    samples, requirement)
                print(f"metric ok: {requirement} (= {value:g})")
            for family, kind in (
                    ("archval_service_jobs_done_total", "counter"),
                    ("archval_service_queue_depth", "gauge"),
                    ("archval_service_job_run_seconds", "histogram")):
                if types.get(family) != kind:
                    return fail(f"family {family} has TYPE "
                                f"{types.get(family)!r}, want {kind!r}")

            # The stats verb must agree with the scrape.
            code, events = client_events(client, socket, "stats")
            frame = next((e for e in events
                          if e.get("type") == "stats"), None)
            if code != 0 or frame is None:
                return fail(f"stats verb failed: exit {code}")
            if frame.get("uptimeSeconds", 0) <= 0:
                return fail("stats frame has no uptime")
            for section in ("queue", "sessions", "process", "build",
                            "metrics"):
                if section not in frame:
                    return fail(f"stats frame missing {section!r}")
            if frame["process"].get("rssBytes", 0) <= 0:
                return fail("stats frame has no RSS sample")
            snap = frame["metrics"]
            done = snap.get("service.jobs_done", 0)
            scraped = metrics_check.check_requirement(
                samples, "archval_service_jobs_done_total")
            if done != scraped:
                return fail(f"stats says {done} jobs done, "
                            f"/metrics says {scraped:g}")
            run_count = snap.get(
                "service.job_run_seconds{verb=replay}.count", 0)
            if run_count < 2:
                return fail("stats frame run-time histogram not "
                            f"populated (count {run_count})")
            wait_count = snap.get(
                "service.job_queue_wait_seconds{verb=replay}.count",
                0)
            if wait_count < 2:
                return fail("stats frame queue-wait histogram not "
                            f"populated (count {wait_count})")

            code, events = client_events(client, socket, "shutdown")
            if code != 0:
                return fail(f"shutdown failed: exit {code}")
            daemon.wait(timeout=30)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    print("metrics smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())

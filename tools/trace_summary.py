#!/usr/bin/env python3
"""Summarize an archval Chrome-trace-event JSON file.

Aggregates the `ph: "X"` complete events emitted by
`support/telemetry` (ARCHVAL_TRACE=out.json) into:

  * a per-phase table: for each span name, the call count, total
    (inclusive) time, self time (total minus time spent in child
    spans on the same thread), and share of measured wall-clock;
  * a per-thread table: for each thread *name* (merging the many
    short-lived OS threads the enumerator spawns per level), busy
    time, extent (first span start to last span end) and
    utilization % (busy / extent);
  * overall coverage: the fraction of the trace's wall-clock
    (earliest start to latest end across all threads) accounted for
    by top-level spans.

Usage:
  tools/trace_summary.py trace.json            # print the tables
  tools/trace_summary.py trace.json --check    # validate; exit 1 on
                                               # schema errors or an
                                               # empty trace
  tools/trace_summary.py trace.json --min-coverage 95
  tools/trace_summary.py trace.json --check \\
      --require-metric 'enum.page_outs>=1' \\
      --require-metric 'enum.spill_fallbacks==0'
  tools/trace_summary.py trace.json --job 3   # only job 3's spans

Service traces stamp each span with the job correlation id that was
live on its thread (`args.job`), including spans recorded by forked
out-of-core workers. When job-stamped spans are present a per-job
self-time table is printed; `--job <id>` restricts every table to
one job's spans across all threads and processes.
"""

import argparse
import json
import re
import sys
from collections import defaultdict


def fail(msg):
    print(f"trace_summary: {msg}", file=sys.stderr)
    sys.exit(1)


def load_trace(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load {path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: not a trace-event file (no traceEvents)")
    if not isinstance(doc["traceEvents"], list):
        fail(f"{path}: traceEvents is not a list")
    return doc


def validate_events(events):
    """Schema check; returns (spans, thread_names)."""
    spans = []
    thread_names = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict) or "ph" not in ev:
            fail(f"event {i}: missing ph")
        ph = ev["ph"]
        if ph == "M":
            if ev.get("name") == "thread_name":
                thread_names[ev.get("tid")] = ev["args"]["name"]
            continue
        if ph != "X":
            fail(f"event {i}: unexpected phase {ph!r}")
        for key in ("name", "tid", "ts", "dur"):
            if key not in ev:
                fail(f"event {i}: X event missing {key!r}")
        if not isinstance(ev["ts"], (int, float)) or not isinstance(
            ev["dur"], (int, float)
        ):
            fail(f"event {i}: ts/dur not numeric")
        if ev["dur"] < 0:
            fail(f"event {i}: negative duration")
        spans.append(ev)
    return spans, thread_names


def compute_self_times(spans):
    """Self time per span = dur minus child time, per-thread nesting.

    Within one thread, spans nest (RAII scoping guarantees it up to
    clock granularity); a sweep with a stack per tid attributes each
    span's interval to the innermost enclosing span.

    Returns (per-name dict of {count, total, self},
             per-tid top-level busy time dict).
    """
    by_tid = defaultdict(list)
    for ev in spans:
        by_tid[ev["tid"]].append(ev)

    names = defaultdict(lambda: {"count": 0, "total": 0.0, "self": 0.0})
    top_busy = defaultdict(float)

    for tid, evs in by_tid.items():
        # Sort by start; longer span first on ties so parents precede
        # children.
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (end, name, child_time_accumulator list)
        for ev in evs:
            start, dur = ev["ts"], ev["dur"]
            end = start + dur
            while stack and stack[-1][0] <= start:
                stack.pop()
            if stack:
                stack[-1][2][0] += dur
            else:
                top_busy[tid] += dur
            rec = names[ev["name"]]
            rec["count"] += 1
            rec["total"] += dur
            child_acc = [0.0]
            stack.append((end, ev["name"], child_acc))
            # Self time is resolved lazily: subtract children when
            # the span is popped — but pops happen implicitly above,
            # so instead record (dur - children) once all children
            # have been seen. Defer via closure list.
            ev["_child_acc"] = child_acc
        for ev in evs:
            names[ev["name"]]["self"] += ev["dur"] - ev["_child_acc"][0]
    return names, top_busy


def thread_table(spans, thread_names):
    """Per-thread-name busy/extent/utilization (tids merged)."""
    per_tid = defaultdict(lambda: {"busy": 0.0, "min": None, "max": None})
    # Busy time must not double-count nested spans: use top-level
    # spans only, recomputed per tid.
    by_tid = defaultdict(list)
    for ev in spans:
        by_tid[ev["tid"]].append(ev)
    for tid, evs in by_tid.items():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        open_end = -1.0
        rec = per_tid[tid]
        for ev in evs:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            rec["min"] = start if rec["min"] is None else min(rec["min"], start)
            rec["max"] = end if rec["max"] is None else max(rec["max"], end)
            if start >= open_end:  # top-level span
                rec["busy"] += ev["dur"]
                open_end = end
            elif end > open_end:
                # overlap past the current top-level span (clock skew
                # at ns->us rounding): count only the excess
                rec["busy"] += end - open_end
                open_end = end
    merged = defaultdict(lambda: {"busy": 0.0, "extent": 0.0, "tids": 0})
    for tid, rec in per_tid.items():
        name = thread_names.get(tid, f"thread-{tid}")
        m = merged[name]
        m["busy"] += rec["busy"]
        m["extent"] += (rec["max"] - rec["min"]) if rec["max"] is not None else 0
        m["tids"] += 1
    return merged


def span_job(ev):
    """The job correlation id stamped on a span, or None."""
    args = ev.get("args")
    if isinstance(args, dict) and isinstance(args.get("job"), int):
        return args["job"]
    return None


def job_table(spans):
    """Per-job count/total/self/threads. Requires compute_self_times
    to have annotated each span with its child-time accumulator."""
    jobs = defaultdict(
        lambda: {"count": 0, "total": 0.0, "self": 0.0, "tids": set()}
    )
    for ev in spans:
        job = span_job(ev)
        if job is None:
            continue
        rec = jobs[job]
        rec["count"] += 1
        rec["total"] += ev["dur"]
        rec["self"] += ev["dur"] - ev["_child_acc"][0]
        rec["tids"].add(ev["tid"])
    return jobs


def check_metric(doc, requirement):
    """Assert one `NAME`, `NAME>=N`, `NAME<=N` or `NAME==N`
    requirement against otherData.metrics (the registry snapshot the
    tracing runtime appends to every trace file). A bare NAME only
    requires the metric to be present."""
    m = re.fullmatch(r"([\w.]+)\s*(?:(>=|<=|==)\s*(-?\d+(?:\.\d+)?))?",
                     requirement.strip())
    if not m:
        fail(f"bad --require-metric expression {requirement!r}")
    name, op, want = m.group(1), m.group(2), m.group(3)
    metrics = doc.get("otherData", {}).get("metrics", {})
    if not isinstance(metrics, dict):
        fail("otherData.metrics is not an object")
    if name not in metrics:
        fail(f"metric {name!r} absent from trace "
             f"(have: {', '.join(sorted(metrics)) or 'none'})")
    value = metrics[name]
    if not isinstance(value, (int, float)):
        fail(f"metric {name!r} is not numeric: {value!r}")
    if op is not None:
        want = float(want)
        ok = {">=": value >= want,
              "<=": value <= want,
              "==": value == want}[op]
        if not ok:
            fail(f"metric {name} = {value}, requirement: {name}{op}{want:g}")
    print(f"metric ok: {name} = {value}"
          + (f" ({op} {want:g})" if op else ""))


def fmt_ms(us):
    return f"{us / 1000.0:.3f}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="trace JSON file (ARCHVAL_TRACE output)")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate schema and require a nonzero span count",
    )
    parser.add_argument(
        "--min-coverage",
        type=float,
        default=None,
        metavar="PCT",
        help="fail unless top-level spans cover at least PCT%% of wall-clock",
    )
    parser.add_argument(
        "--job",
        type=int,
        default=None,
        metavar="ID",
        help="restrict every table to spans stamped with this job "
        "correlation id (args.job), across threads and forked workers",
    )
    parser.add_argument(
        "--require-metric",
        action="append",
        default=[],
        metavar="NAME[>=N|<=N|==N]",
        help="fail unless otherData.metrics satisfies the expression "
        "(repeatable; bare NAME requires presence only)",
    )
    args = parser.parse_args()

    doc = load_trace(args.trace)
    spans, thread_names = validate_events(doc["traceEvents"])

    for requirement in args.require_metric:
        check_metric(doc, requirement)

    if args.job is not None:
        jobs_present = sorted(
            {span_job(ev) for ev in spans} - {None}
        )
        spans = [ev for ev in spans if span_job(ev) == args.job]
        if not spans:
            fail(
                f"no spans stamped with job {args.job} "
                f"(jobs in trace: "
                f"{', '.join(map(str, jobs_present)) or 'none'})"
            )

    if args.check and not spans:
        fail("trace contains no spans")

    if not spans:
        print("empty trace (no spans)")
        return

    names, top_busy = compute_self_times(spans)
    threads = thread_table(spans, thread_names)

    wall_start = min(ev["ts"] for ev in spans)
    wall_end = max(ev["ts"] + ev["dur"] for ev in spans)
    wall = wall_end - wall_start

    # Coverage: wall-clock accounted for by the busiest thread's
    # top-level spans (the main/orchestrating thread defines the
    # run's timeline; worker threads overlap it).
    covered = max(top_busy.values()) if top_busy else 0.0
    coverage = 100.0 * covered / wall if wall > 0 else 100.0

    print(f"trace: {args.trace}")
    print(
        f"wall-clock {fmt_ms(wall)} ms, {len(spans)} spans, "
        f"{len(threads)} thread names, "
        f"dropped {doc.get('otherData', {}).get('droppedSpans', 0)}"
    )
    print()
    print(
        f"{'phase':<28} {'count':>8} {'total ms':>12} "
        f"{'self ms':>12} {'% wall':>8}"
    )
    for name, rec in sorted(
        names.items(), key=lambda kv: -kv[1]["total"]
    ):
        pct = 100.0 * rec["total"] / wall if wall > 0 else 0.0
        print(
            f"{name:<28} {rec['count']:>8} {fmt_ms(rec['total']):>12} "
            f"{fmt_ms(rec['self']):>12} {pct:>7.1f}%"
        )
    print()
    print(
        f"{'thread':<28} {'tids':>6} {'busy ms':>12} "
        f"{'extent ms':>12} {'util %':>8}"
    )
    for name, rec in sorted(
        threads.items(), key=lambda kv: -kv[1]["busy"]
    ):
        util = (
            100.0 * rec["busy"] / rec["extent"] if rec["extent"] > 0 else 0.0
        )
        print(
            f"{name:<28} {rec['tids']:>6} {fmt_ms(rec['busy']):>12} "
            f"{fmt_ms(rec['extent']):>12} {util:>7.1f}%"
        )
    jobs = job_table(spans)
    if jobs and args.job is None:
        print()
        print(
            f"{'job':<10} {'spans':>8} {'threads':>8} "
            f"{'total ms':>12} {'self ms':>12}"
        )
        for job, rec in sorted(jobs.items()):
            print(
                f"{job:<10} {rec['count']:>8} {len(rec['tids']):>8} "
                f"{fmt_ms(rec['total']):>12} {fmt_ms(rec['self']):>12}"
            )

    print()
    print(f"top-level span coverage: {coverage:.1f}% of wall-clock")

    if args.min_coverage is not None and coverage < args.min_coverage:
        fail(
            f"coverage {coverage:.1f}% below required "
            f"{args.min_coverage:.1f}%"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""CI driver for the `ooc_smoke` ctest.

Exercises the service end of out-of-core enumeration: two archvald
lifetimes enumerate the same design, one fully in-memory and one
budget-capped across two forked worker processes
(`--memory-budget-kb 128 --enum-processes 2`), and the reported
`graphFingerprint` must be byte-identical. The capped run must
actually have gone out of core — spill bytes written, shard pages
out, residency high-water under the budget — without a single spill
fallback, all asserted both from the result frame and from the
telemetry trace via trace_summary.py --check --require-metric.

Usage: tools/ooc_smoke.py <archvald> <archval_client>
"""

import os
import subprocess
import sys
import tempfile

from service_smoke import (boot_daemon, client_events, fail,
                           shutdown_daemon, terminal)

BUDGET_KB = 128


def enumerate_once(archvald, client, tmp, tag, extra_client_args):
    """One daemon lifetime running a single enumerate job.
    Returns (result_frame, trace_path, error)."""
    socket = os.path.join(tmp, f"archval_{tag}.sock")
    trace = os.path.join(tmp, f"trace_{tag}.json")
    env = dict(os.environ, ARCHVAL_TRACE=trace)
    daemon, error = boot_daemon(archvald, socket, env)
    if error:
        return None, trace, error
    try:
        code, events = client_events(
            client, socket, "enumerate", *extra_client_args)
        result = terminal(events)
        if code != 0 or not result or result["type"] != "result":
            return None, trace, \
                f"{tag} enumerate failed: exit {code}, " \
                f"terminal {result}"
        error = shutdown_daemon(client, socket, daemon)
        if error:
            return None, trace, error
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()
    return result, trace, None


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    archvald, client = sys.argv[1:]
    summary = os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        "trace_summary.py")

    with tempfile.TemporaryDirectory() as tmp:
        in_mem, _, error = enumerate_once(
            archvald, client, tmp, "inmem", [])
        if error:
            return fail(error)
        spill_root = os.path.join(tmp, "spill")
        ooc, trace, error = enumerate_once(
            archvald, client, tmp, "ooc",
            ["--memory-budget-kb", str(BUDGET_KB),
             "--enum-processes", "2",
             "--spill-dir", spill_root])
        if error:
            return fail(error)

        for tag, result in (("in-memory", in_mem), ("ooc", ooc)):
            if result.get("states", 0) <= 0:
                return fail(f"{tag} enumerate reported no states")
            if "graphFingerprint" not in result:
                return fail(f"{tag} result has no graphFingerprint")

        # The headline guarantee: the disk-backed multi-process
        # search produced the exact same graph.
        if in_mem["graphFingerprint"] != ooc["graphFingerprint"]:
            return fail(
                "graph fingerprints diverge: in-memory "
                f"{in_mem['graphFingerprint']} vs out-of-core "
                f"{ooc['graphFingerprint']}")
        if in_mem["states"] != ooc["states"] or \
                in_mem["edges"] != ooc["edges"]:
            return fail("state/edge counts diverge")

        # The in-memory run must not have touched the spill machinery
        # ...
        if in_mem.get("spillBytes", 0) != 0 or \
                in_mem.get("pageOuts", 0) != 0:
            return fail("in-memory run reported spill activity")
        # ... and the capped run must actually have gone out of core,
        # with residency held under the budget and zero fallbacks.
        if ooc.get("spillBytes", 0) <= 0:
            return fail("ooc run wrote no spill bytes")
        if ooc.get("pageOuts", 0) < 1 or ooc.get("pageIns", 0) < 1:
            return fail(
                f"ooc run paged no shards (out {ooc.get('pageOuts')},"
                f" in {ooc.get('pageIns')})")
        if ooc.get("spillFallbacks", 0) != 0:
            return fail(
                f"ooc run fell back {ooc.get('spillFallbacks')}x")
        if ooc.get("residencyHighWater", 0) > BUDGET_KB * 1024:
            return fail(
                f"residency high water {ooc.get('residencyHighWater')}"
                f" exceeds the {BUDGET_KB} KiB budget")
        # The spill directory cleans up after itself.
        leftovers = []
        for root, _, files in os.walk(spill_root):
            leftovers += [os.path.join(root, f) for f in files]
        if leftovers:
            return fail(f"spill files left behind: {leftovers}")

        # Telemetry must tell the same story.
        check = subprocess.run(
            [sys.executable, summary, trace, "--check",
             "--require-metric", "enum.spill_bytes>=1",
             "--require-metric", "enum.page_outs>=1",
             "--require-metric", "enum.page_ins>=1",
             "--require-metric", "enum.spill_fallbacks==0",
             "--require-metric",
             f"enum.residency_high_water.max<={BUDGET_KB * 1024}"])
        if check.returncode != 0:
            return fail("trace_summary --check failed")

    print("ooc smoke ok: fingerprint "
          f"{ooc['graphFingerprint']}, {ooc['states']} states, "
          f"{ooc['spillBytes']} spill bytes, "
          f"{ooc['pageOuts']} page-outs")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Parse and assert on a Prometheus text exposition (archvald
`GET /metrics`).

Importable by other tools (metrics_smoke.py) and usable standalone:

  tools/metrics_check.py metrics.prom \\
      --require 'archval_service_jobs_done_total>=1' \\
      --require 'archval_service_job_run_seconds_count{verb="replay"}'

Requirement expressions use the same grammar as trace_summary.py's
--require-metric — `NAME`, `NAME>=N`, `NAME<=N`, `NAME==N`, where a
bare NAME only requires presence — extended with an optional
`{label="value",...}` selector. A selector matches a sample whose
label set contains every listed pair (subset match); a name with no
selector matches all samples of that family summed (so counters
split across label variants can be gated as one number).

parse() validates the exposition while reading it: every line must
be a `# HELP`/`# TYPE` directive or a well-formed sample, each
family's TYPE must precede its samples, and duplicate sample keys
are an error. Pass `-` to read from stdin.
"""

import argparse
import re
import sys

_SAMPLE_RE = re.compile(
    r"([A-Za-z_:][A-Za-z0-9_:]*)"  # metric name
    r"(?:\{(.*)\})?"  # optional label body
    r"\s+(-?(?:\d+(?:\.\d+)?(?:[eE][+-]?\d+)?|Inf|NaN))\s*$"
)
_LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:[^"\\]|\\.)*)"')
_REQUIRE_RE = re.compile(
    r"([A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(.*)\})?"
    r"\s*(?:(>=|<=|==)\s*(-?\d+(?:\.\d+)?))?\s*$"
)

_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class ExpositionError(Exception):
    pass


def _unescape(value):
    return (
        value.replace("\\\\", "\0")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\0", "\\")
    )


def _parse_labels(body):
    """`verb="replay",le="+Inf"` -> frozenset of (key, value)."""
    labels = []
    pos = 0
    while pos < len(body):
        m = _LABEL_RE.match(body, pos)
        if not m:
            raise ExpositionError(f"bad label body {body!r}")
        labels.append((m.group(1), _unescape(m.group(2))))
        pos = m.end()
        if pos < len(body):
            if body[pos] != ",":
                raise ExpositionError(f"bad label body {body!r}")
            pos += 1
    return frozenset(labels)


def parse(text):
    """Validate and parse an exposition.

    Returns (samples, types): samples maps (name, labels-frozenset)
    to float value; types maps family name to its declared TYPE.
    Raises ExpositionError on any malformed line.
    """
    samples = {}
    types = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in _TYPES:
                    raise ExpositionError(
                        f"line {lineno}: bad TYPE directive {line!r}"
                    )
                if parts[2] in types:
                    raise ExpositionError(
                        f"line {lineno}: duplicate TYPE for {parts[2]}"
                    )
                types[parts[2]] = parts[3]
            elif len(parts) >= 3 and parts[1] == "HELP":
                pass
            else:
                raise ExpositionError(
                    f"line {lineno}: unrecognized comment {line!r}"
                )
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            raise ExpositionError(f"line {lineno}: bad sample {line!r}")
        name, label_body, value = m.groups()
        labels = _parse_labels(label_body) if label_body else frozenset()
        key = (name, labels)
        if key in samples:
            raise ExpositionError(
                f"line {lineno}: duplicate sample {line.split()[0]}"
            )
        # A sample's family is its name minus the histogram suffix.
        family = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in types and family not in types:
            raise ExpositionError(
                f"line {lineno}: sample {name} precedes its TYPE"
            )
        samples[key] = float(value)
    return samples, types


def parse_requirement(requirement):
    """`NAME{sel}OP N` -> (name, selector-frozenset|None, op, want)."""
    m = _REQUIRE_RE.match(requirement.strip())
    if not m:
        raise ValueError(f"bad requirement expression {requirement!r}")
    name, sel_body, op, want = m.groups()
    selector = _parse_labels(sel_body) if sel_body is not None else None
    return name, selector, op, float(want) if want is not None else None


def check_requirement(samples, requirement):
    """Assert one requirement; returns the matched (summed) value.

    Raises ExpositionError when no sample matches or the comparison
    fails.
    """
    name, selector, op, want = parse_requirement(requirement)
    matched = [
        value
        for (sample_name, labels), value in samples.items()
        if sample_name == name
        and (selector is None or selector <= labels)
    ]
    if not matched:
        families = sorted({n for n, _ in samples})
        raise ExpositionError(
            f"no sample matches {requirement!r} "
            f"(have {len(families)} families)"
        )
    value = sum(matched)
    if op is not None:
        ok = {
            ">=": value >= want,
            "<=": value <= want,
            "==": value == want,
        }[op]
        if not ok:
            raise ExpositionError(
                f"{name} = {value:g}, requirement: {requirement}"
            )
    return value


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "exposition", help="Prometheus text file, or - for stdin"
    )
    parser.add_argument(
        "--require",
        action="append",
        default=[],
        metavar="NAME[{sel}][>=N|<=N|==N]",
        help="fail unless a matching sample satisfies the expression "
        "(repeatable; bare NAME requires presence only)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print every parsed sample",
    )
    args = parser.parse_args()

    if args.exposition == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(args.exposition) as f:
                text = f.read()
        except OSError as e:
            print(f"metrics_check: {e}", file=sys.stderr)
            sys.exit(1)

    try:
        samples, types = parse(text)
        if args.list:
            for (name, labels), value in sorted(samples.items()):
                label_str = ",".join(
                    f'{k}="{v}"' for k, v in sorted(labels)
                )
                suffix = f"{{{label_str}}}" if label_str else ""
                print(f"{name}{suffix} {value:g}")
        for requirement in args.require:
            value = check_requirement(samples, requirement)
            print(f"metric ok: {requirement} (= {value:g})")
    except (ExpositionError, ValueError) as e:
        print(f"metrics_check: {e}", file=sys.stderr)
        sys.exit(1)
    print(
        f"metrics_check: {len(samples)} samples in "
        f"{len(types)} families ok"
    )


if __name__ == "__main__":
    main()
